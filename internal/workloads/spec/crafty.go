package spec

import (
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Crafty is the 186.crafty analogue: alpha-beta game-tree search with a
// transposition table. Crafty's signature in Table 1 is the largest
// instruction-cache pressure of the whole suite (83.5M IL1 misses per
// 1B instructions) with a small data working set that fits a single L2,
// so migrations can only hurt slightly (Table 2 ratio 1.13).
//
// The kernel searches a deterministic pseudo-game: positions are Zobrist
// hashes, move generation / evaluation / attack detection run in many
// distinct code functions (≈400 KB footprint, short bursts per call),
// and the transposition table (384 KB) takes random probes.
type Crafty struct {
	workloads.Base
}

// NewCrafty returns the default configuration.
func NewCrafty() workloads.Workload {
	return &Crafty{Base: workloads.Base{
		WName:  "186.crafty",
		WSuite: "spec2000",
		WDesc:  "alpha-beta search; ~290KB code footprint, 192KB transposition table (fits one L2)",
	}}
}

// Run implements workloads.Workload.
func (w *Crafty) Run(sink mem.Sink, budget uint64) {
	sp := sim.NewSpace()
	code := sp.NewCode(8 << 20)
	// 192 helper functions of 1.5 KB ≈ 288 KB of code.
	var fns []*sim.Func
	for i := 0; i < 192; i++ {
		fns = append(fns, code.Func("search_helper", 1536))
	}
	fSearch := code.Func("search", 2048)

	data := sp.AddRegion("crafty", 1<<30)
	const ttEntries = 12 << 10 // 12k × 16 B = 192 KB
	ttAddr := data.Alloc(ttEntries*16, 64)
	tt := make([]uint64, ttEntries)
	boardAddr := data.Alloc(4096, 64) // board + history: hot, fits L1

	rng := trace.NewRNG(186)
	var zobrist [1024]uint64
	for i := range zobrist {
		zobrist[i] = rng.Uint64()
	}

	cpu := sim.NewCPU(sink)

	// search explores the pseudo-game tree to the given depth.
	var search func(h uint64, depth, alpha int) int
	search = func(h uint64, depth, alpha int) int {
		cpu.Enter(fSearch)
		cpu.Load(boardAddr)
		cpu.Exec(14)

		// transposition probe
		slot := h % ttEntries
		cpu.Load(ttAddr + mem.Addr(slot*16))
		cpu.Exec(6)
		if tt[slot] == h {
			return int(h & 0xff) // hash hit
		}
		if depth == 0 {
			// evaluation: a handful of helper calls (attack maps, pawn
			// structure, king safety) — the I-stream hops across the
			// code footprint.
			e := 0
			for k := 0; k < 4; k++ {
				cpu.Call(fns[int((h>>uint(8*k))%uint64(len(fns)))], 22)
				e += int((h >> uint(8*k)) & 0x3f)
			}
			cpu.Store(boardAddr + 64)
			return e - 32
		}
		// move generation
		cpu.Call(fns[int(h%uint64(len(fns)))], 30)
		nMoves := 3 + int(h%5)
		best := -1 << 30
		for mv := 0; mv < nMoves; mv++ {
			// make move: update board + hash
			nh := h ^ zobrist[(h>>uint(4*mv))&1023] ^ zobrist[mv*7&1023]
			cpu.Store(boardAddr)
			cpu.Call(fns[int((nh>>3)%uint64(len(fns)))], 12)
			score := -search(nh, depth-1, -best)
			if score > best {
				best = score
			}
			if best > alpha+40 {
				break // beta cutoff
			}
		}
		// transposition store
		tt[slot] = h
		cpu.Store(ttAddr + mem.Addr(slot*16))
		cpu.Exec(8)
		return best
	}

	root := rng.Uint64()
	for cpu.Instrs < budget {
		search(root, 6, -1<<30)
		root = root*6364136223846793005 + 1442695040888963407
	}
}
