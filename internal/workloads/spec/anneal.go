package spec

import (
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// anneal implements a simulated-annealing standard-cell placer, the
// kernel shared by 175.vpr (place) and 300.twolf: pick two random cells,
// evaluate the wirelength delta of the nets they touch, accept or
// reject. Cell and net records are hit in random order — the paper's
// archetype of a working set with no splittability (it names vpr
// explicitly in §3.4). The two benchmarks differ in footprint: vpr's
// placement working set fits one 512 KB L2 (so baseline L2 misses are
// rare and migration only hurts — Table 2 ratio 1.60), twolf's is
// slightly over (ratio 1.00).
type anneal struct {
	workloads.Base
	cells, nets, fanout int
	seed                uint64
}

type placeCell struct {
	x, y int32
	nets []int32
	_pad [4]int64
}

type placeNet struct {
	cells []int32
	bbox  [4]int32
	_pad  [4]int64
}

// NewVpr returns the 175.vpr analogue: 2k cells + 3k nets ≈ 320 KB.
func NewVpr() workloads.Workload {
	return &anneal{
		Base: workloads.Base{
			WName:  "175.vpr",
			WSuite: "spec2000",
			WDesc:  "annealing placement; random probes of ~320KB netlist (fits one L2; no splittability)",
		},
		cells: 2 << 10, nets: 3 << 10, fanout: 4, seed: 175,
	}
}

// NewTwolf returns the 300.twolf analogue: 6k cells + 9k nets ≈ 960 KB.
func NewTwolf() workloads.Workload {
	return &anneal{
		Base: workloads.Base{
			WName:  "300.twolf",
			WSuite: "spec2000",
			WDesc:  "annealing place+route; random probes of ~1MB netlist (exceeds one L2; no splittability)",
		},
		cells: 6 << 10, nets: 9 << 10, fanout: 4, seed: 300,
	}
}

// Run implements workloads.Workload.
func (w *anneal) Run(sink mem.Sink, budget uint64) {
	sp := sim.NewSpace()
	code := sp.NewCode(1 << 20)
	fTry := code.Func("try_swap", 1024)
	fCost := code.Func("net_cost", 768)
	fUpdate := code.Func("update_bb", 512)

	const cellBytes, netBytes = 64, 64
	data := sp.AddRegion("netlist", 1<<30)
	cellAddr := data.Alloc(uint64(w.cells)*cellBytes, 64)
	netAddr := data.Alloc(uint64(w.nets)*netBytes, 64)

	rng := trace.NewRNG(w.seed)
	cells := make([]placeCell, w.cells)
	nets := make([]placeNet, w.nets)
	grid := int32(256)
	for i := range cells {
		cells[i].x = int32(rng.Intn(int(grid)))
		cells[i].y = int32(rng.Intn(int(grid)))
	}
	for n := range nets {
		k := 2 + rng.Intn(w.fanout)
		for j := 0; j < k; j++ {
			c := int32(rng.Intn(w.cells))
			nets[n].cells = append(nets[n].cells, c)
			if len(cells[c].nets) < w.fanout+2 {
				cells[c].nets = append(cells[c].nets, int32(n))
			}
		}
	}

	caddr := func(i int32) mem.Addr { return cellAddr + mem.Addr(int(i)*cellBytes) }
	naddr := func(i int32) mem.Addr { return netAddr + mem.Addr(int(i)*netBytes) }

	cpu := sim.NewCPU(sink)
	cost := func(n int32) int64 {
		cpu.Call(fCost, 4)
		cpu.Load(naddr(n))
		var minx, maxx, miny, maxy int32 = 1 << 30, -1, 1 << 30, -1
		for _, c := range nets[n].cells {
			cpu.Load(caddr(c))
			cpu.Exec(6)
			cl := &cells[c]
			if cl.x < minx {
				minx = cl.x
			}
			if cl.x > maxx {
				maxx = cl.x
			}
			if cl.y < miny {
				miny = cl.y
			}
			if cl.y > maxy {
				maxy = cl.y
			}
		}
		return int64(maxx-minx) + int64(maxy-miny)
	}

	temp := 1000.0
	for cpu.Instrs < budget {
		for iter := 0; iter < 4096; iter++ {
			cpu.Enter(fTry)
			a := int32(rng.Intn(w.cells))
			b := int32(rng.Intn(w.cells))
			cpu.Load(caddr(a))
			cpu.Load(caddr(b))
			cpu.Exec(12)

			var before, after int64
			for _, n := range cells[a].nets {
				before += cost(n)
			}
			for _, n := range cells[b].nets {
				before += cost(n)
			}
			cells[a].x, cells[b].x = cells[b].x, cells[a].x
			cells[a].y, cells[b].y = cells[b].y, cells[a].y
			for _, n := range cells[a].nets {
				after += cost(n)
			}
			for _, n := range cells[b].nets {
				after += cost(n)
			}
			accept := after <= before || rng.Float64() < temp/(temp+float64(after-before)+1)
			if !accept {
				cells[a].x, cells[b].x = cells[b].x, cells[a].x
				cells[a].y, cells[b].y = cells[b].y, cells[a].y
			} else {
				cpu.Enter(fUpdate)
				cpu.Store(caddr(a))
				cpu.Store(caddr(b))
				for _, n := range cells[a].nets {
					cpu.Store(naddr(n))
				}
				for _, n := range cells[b].nets {
					cpu.Store(naddr(n))
				}
				cpu.Exec(10)
			}
			cpu.Exec(8)
		}
		temp *= 0.98
		if temp < 1 {
			temp = 1000
		}
	}
}
