package spec

import (
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// Swim is the 171.swim analogue: the shallow-water finite-difference
// model. Each timestep sweeps several 2-D grids with 9-point stencils —
// circular traversal, but of a working set (~13 MB) far beyond the
// 2 MB aggregate L2, so migration cannot help (Table 2 ratio 1.00; the
// small affinity cache suppresses migrations, §4.2).
type Swim struct {
	workloads.Base
	n int // grid edge
}

// NewSwim returns the default configuration: 6 grids of 525×525 float64
// ≈ 13.2 MB.
func NewSwim() workloads.Workload {
	return &Swim{
		Base: workloads.Base{
			WName:  "171.swim",
			WSuite: "spec2000",
			WDesc:  "shallow-water stencil; cyclic sweeps of ~13MB grids (working set exceeds 4xL2)",
		},
		n: 525,
	}
}

// Run implements workloads.Workload.
func (w *Swim) Run(sink mem.Sink, budget uint64) {
	sp := sim.NewSpace()
	code := sp.NewCode(1 << 20)
	fCalc1 := code.Func("calc1", 1024)
	fCalc2 := code.Func("calc2", 1024)
	fCalc3 := code.Func("calc3", 768)

	n := w.n
	cells := n * n
	data := sp.AddRegion("grids", 1<<30)
	addrOf := make([]mem.Addr, 6)
	grids := make([][]float64, 6)
	for g := 0; g < 6; g++ {
		addrOf[g] = data.Alloc(uint64(cells)*8, 64)
		grids[g] = make([]float64, cells)
		for i := range grids[g] {
			grids[g][i] = float64(i%97) * 0.013
		}
	}
	u, v, p, unew, vnew, pnew := grids[0], grids[1], grids[2], grids[3], grids[4], grids[5]
	au, av, ap, aunew, avnew, apnew := addrOf[0], addrOf[1], addrOf[2], addrOf[3], addrOf[4], addrOf[5]

	at := func(base mem.Addr, idx int) mem.Addr { return base + mem.Addr(idx*8) }
	cpu := sim.NewCPU(sink)

	// stencil sweep helper: reads three source grids around (i,j), writes
	// one destination; loads are emitted once per line (8 columns).
	sweep := func(dst []float64, dstA mem.Addr, s1, s2, s3 []float64, a1, a2, a3 mem.Addr, f *sim.Func) {
		cpu.Enter(f)
		for i := 1; i < n-1; i++ {
			row := i * n
			for j := 1; j < n-1; j++ {
				idx := row + j
				if j%8 == 1 {
					cpu.Load(at(a1, idx))
					cpu.Load(at(a2, idx))
					cpu.Load(at(a3, idx))
					cpu.Load(at(a1, idx-n)) // stencil row above
					cpu.Load(at(a1, idx+n)) // stencil row below
					cpu.Store(at(dstA, idx))
				}
				dst[idx] = 0.25*(s1[idx-1]+s1[idx+1]+s1[idx-n]+s1[idx+n]) +
					0.5*s2[idx] - 0.1*s3[idx]
				cpu.Exec(3)
			}
		}
	}

	for cpu.Instrs < budget {
		sweep(unew, aunew, u, v, p, au, av, ap, fCalc1)
		sweep(vnew, avnew, v, p, u, av, ap, au, fCalc2)
		sweep(pnew, apnew, p, u, v, ap, au, av, fCalc3)
		u, unew = unew, u
		v, vnew = vnew, v
		p, pnew = pnew, p
		au, aunew = aunew, au
		av, avnew = avnew, av
		ap, apnew = apnew, ap
	}
}
