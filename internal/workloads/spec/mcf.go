package spec

import (
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Mcf is the 181.mcf analogue: network simplex for minimum-cost flow.
// The dominant kernel of the original is the pricing scan — a sweep over
// the full arc array computing reduced costs — interleaved with pivots
// that chase basis-tree pointers. The arc array (~3 MB) gives a large
// circular component (splittable), the tree walks a random-ish one, so
// migration removes part of the misses (paper Table 2 ratio 0.67).
type Mcf struct {
	workloads.Base
	nodes, arcs int
}

// mcfNode mirrors the original's node record (tree pointers, potential).
type mcfNode struct {
	parent, child, sibling int32
	potential              int64
	depth                  int32
}

// mcfArc mirrors the arc record (tail, head, cost, flow, state).
type mcfArc struct {
	tail, head int32
	cost       int64
	flow       int64
	state      int8
}

// NewMcf returns the default configuration: 8k nodes, 24k arcs
// (nodes ≈ 0.5 MB, arcs ≈ 1.5 MB at 64 B per record): the pricing scan
// exceeds one 512 KB L2 but fits the 2 MB aggregate.
func NewMcf() workloads.Workload {
	return &Mcf{
		Base: workloads.Base{
			WName:  "181.mcf",
			WSuite: "spec2000",
			WDesc:  "network simplex; 2MB arc pricing scans + basis-tree pointer chasing (partially splittable)",
		},
		nodes: 8 << 10,
		arcs:  24 << 10,
	}
}

// Run implements workloads.Workload.
func (m *Mcf) Run(sink mem.Sink, budget uint64) {
	sp := sim.NewSpace()
	code := sp.NewCode(1 << 20)
	fPrice := code.Func("price_out_impl", 1536)
	fPivot := code.Func("primal_iminus", 1024)

	const nodeBytes, arcBytes = 64, 64
	data := sp.AddRegion("network", 1<<30)
	nodeAddr := data.Alloc(uint64(m.nodes)*nodeBytes, 64)
	arcAddr := data.Alloc(uint64(m.arcs)*arcBytes, 64)

	rng := trace.NewRNG(181)
	nodes := make([]mcfNode, m.nodes)
	arcs := make([]mcfArc, m.arcs)
	// Random spanning-tree-ish structure: parent of i is a random lower
	// index; arcs connect random node pairs.
	for i := 1; i < m.nodes; i++ {
		nodes[i].parent = int32(rng.Intn(i))
		nodes[i].depth = nodes[nodes[i].parent].depth + 1
		nodes[i].potential = int64(rng.Intn(1000))
	}
	for i := range arcs {
		arcs[i].tail = int32(rng.Intn(m.nodes))
		arcs[i].head = int32(rng.Intn(m.nodes))
		arcs[i].cost = int64(rng.Intn(10000)) - 5000
	}

	naddr := func(i int32) mem.Addr { return nodeAddr + mem.Addr(int(i)*nodeBytes) }
	aaddr := func(i int) mem.Addr { return arcAddr + mem.Addr(i*arcBytes) }

	cpu := sim.NewCPU(sink)

	for cpu.Instrs < budget {
		// ---- Pricing: full scan of the arc array (circular, 3 MB).
		cpu.Enter(fPrice)
		bestArc, bestRC := -1, int64(0)
		for i := range arcs {
			a := &arcs[i]
			cpu.Load(aaddr(i))
			// reduced cost needs both endpoint potentials
			cpu.Load(naddr(a.tail))
			cpu.Load(naddr(a.head))
			rc := a.cost - nodes[a.tail].potential + nodes[a.head].potential
			cpu.Exec(13)
			if a.state >= 0 && rc < bestRC {
				bestArc, bestRC = i, rc
			}
		}
		if bestArc < 0 {
			// Re-perturb potentials so pivots continue (the analogue of
			// new price passes on refreshed duals).
			for i := range nodes {
				nodes[i].potential += int64(rng.Intn(100)) - 50
				cpu.Store(naddr(int32(i)))
				cpu.Exec(3)
			}
			continue
		}

		// ---- Pivot: walk the basis tree from both endpoints to their
		// common ancestor, updating potentials (pointer chasing).
		cpu.Enter(fPivot)
		a := &arcs[bestArc]
		i, j := a.tail, a.head
		for step := 0; step < 4096 && i != j; step++ {
			cpu.LoadPtr(naddr(i))
			cpu.LoadPtr(naddr(j))
			cpu.Exec(8)
			if nodes[i].depth >= nodes[j].depth && i != 0 {
				nodes[i].potential += bestRC
				cpu.Store(naddr(i))
				i = nodes[i].parent
			} else if j != 0 {
				nodes[j].potential -= bestRC
				cpu.Store(naddr(j))
				j = nodes[j].parent
			} else {
				break
			}
		}
		// Arc leaves the candidate state; flow update.
		a.state = -1
		a.flow += 1
		cpu.Store(aaddr(bestArc))
		cpu.Exec(6)
		// Periodically re-admit arcs so pricing keeps finding pivots.
		if rng.Uint64n(8) == 0 {
			for k := 0; k < 64; k++ {
				idx := rng.Intn(m.arcs)
				arcs[idx].state = 0
				cpu.Store(aaddr(idx))
				cpu.Exec(4)
			}
		}
	}
}
