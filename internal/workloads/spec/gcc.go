package spec

import (
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Gcc is the 176.gcc analogue: an optimizing-compiler pass pipeline.
// The defining features of gcc's reference stream are (1) an enormous
// instruction footprint — Table 1 reports 41.6M IL1 misses, second only
// to crafty — and (2) data processed function-by-function: each compiled
// function's IR is walked by several passes in sequence before moving
// on, giving a mild phase structure (Table 2 ratio 0.95, a small win).
//
// The kernel compiles a stream of synthetic functions: each gets a CFG
// of basic blocks holding instruction lists; passes (CSE-ish hashing,
// liveness-ish backward walk, scheduling-ish forward walk) traverse the
// block graph. Pass code is spread over many simulated code functions so
// the I-stream sweeps a ~300 KB footprint.
type Gcc struct {
	workloads.Base
}

// NewGcc returns the default configuration.
func NewGcc() workloads.Workload {
	return &Gcc{Base: workloads.Base{
		WName:  "176.gcc",
		WSuite: "spec2000",
		WDesc:  "compiler pass pipeline; ~300KB code footprint, per-function IR walks (mild phases)",
	}}
}

type gccInsn struct {
	op, dst, src1, src2 int32
	_pad                [6]int64
}

type gccBlock struct {
	insns      []gccInsn
	addr       mem.Addr
	succ, pred []int32
}

// Run implements workloads.Workload.
func (w *Gcc) Run(sink mem.Sink, budget uint64) {
	sp := sim.NewSpace()
	// Large code footprint: 24 passes × 8 helper funcs × 1.5 KB ≈ 290 KB.
	code := sp.NewCode(8 << 20)
	var passFns [][]*sim.Func
	for p := 0; p < 24; p++ {
		var fns []*sim.Func
		for h := 0; h < 8; h++ {
			fns = append(fns, code.Func("pass", 1536))
		}
		passFns = append(passFns, fns)
	}

	data := sp.AddRegion("ir", 1<<32)
	const insnBytes = 64
	rng := trace.NewRNG(176)
	cpu := sim.NewCPU(sink)
	cpu.Enter(passFns[0][0])

	hashAddr := data.Alloc(1<<18, 64) // 256 KB CSE hash table
	hashTab := make([]int32, 1<<15)

	// buildFunc creates one function's CFG: nb blocks of ~12 insns.
	buildFunc := func() []*gccBlock {
		nb := 8 + rng.Intn(48)
		blocks := make([]*gccBlock, nb)
		for i := range blocks {
			ni := 4 + rng.Intn(20)
			b := &gccBlock{
				insns: make([]gccInsn, ni),
				addr:  data.Alloc(uint64(ni)*insnBytes, 64),
			}
			for k := range b.insns {
				b.insns[k] = gccInsn{
					op:   int32(rng.Intn(64)),
					dst:  int32(rng.Intn(32)),
					src1: int32(rng.Intn(32)),
					src2: int32(rng.Intn(32)),
				}
			}
			blocks[i] = b
		}
		for i := range blocks {
			s := (i + 1) % nb
			blocks[i].succ = append(blocks[i].succ, int32(s))
			blocks[s].pred = append(blocks[s].pred, int32(i))
			if rng.Uint64n(3) == 0 {
				t := int32(rng.Intn(nb))
				blocks[i].succ = append(blocks[i].succ, t)
				blocks[t].pred = append(blocks[t].pred, int32(i))
			}
		}
		return blocks
	}

	// walk visits every instruction of every block in order, charging
	// work in the given pass's helper functions (call-heavy I-stream).
	walk := func(blocks []*gccBlock, fns []*sim.Func, backward bool, storeEvery int) {
		order := blocks
		for bi := range order {
			b := order[bi]
			if backward {
				b = order[len(order)-1-bi]
			}
			cpu.Enter(fns[bi%len(fns)])
			for k := range b.insns {
				in := &b.insns[k]
				cpu.Load(b.addr + mem.Addr(k*insnBytes))
				// CSE-like hash probe
				h := uint32(in.op*31+in.src1*7+in.src2) & (1<<15 - 1)
				cpu.Load(hashAddr + mem.Addr(h*8))
				if hashTab[h] == in.dst {
					in.op = 0 // folded
				} else {
					hashTab[h] = in.dst
					if storeEvery > 0 && k%storeEvery == 0 {
						cpu.Store(hashAddr + mem.Addr(h*8))
					}
				}
				// helper call: short burst in another code function
				cpu.Call(fns[(bi+k)%len(fns)], 9)
				cpu.Exec(7)
			}
			for range b.succ {
				cpu.Exec(2)
			}
		}
	}

	for cpu.Instrs < budget {
		// Compile one translation unit: build a file of functions, then
		// run every pass over the whole file (the paper-relevant shape:
		// each pass sweeps the file's IR in the same order, so the IR
		// working set — a few hundred KB — is revisited cyclically).
		const fileFuncs = 16
		file := make([][]*gccBlock, fileFuncs)
		for i := range file {
			file[i] = buildFunc()
		}
		for p := range passFns {
			for _, blocks := range file {
				walk(blocks, passFns[p], p%3 == 1, 3+p%4)
			}
		}
	}
}
