package spec

import (
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Gzip is the 164.gzip analogue: LZ77 compression with hash-chained
// match search over a 32 KB sliding window. Hash probes and chain walks
// land at effectively random window offsets and the input itself merely
// streams, so the L1-filtered stream is random-like — the paper calls
// gzip out explicitly as having no splittability (§3.4, Table 2 ratio
// 1.01).
type Gzip struct {
	workloads.Base
}

// NewGzip returns the default configuration.
func NewGzip() workloads.Workload {
	return &Gzip{Base: workloads.Base{
		WName:  "164.gzip",
		WSuite: "spec2000",
		WDesc:  "LZ77 with hash chains; streaming input + random window probes (no splittability)",
	}}
}

const (
	gzWindow   = 32 << 10
	gzHashSize = 1 << 15
	gzChainLen = 8
	gzBlock    = 64 << 10
)

// Run implements workloads.Workload.
func (w *Gzip) Run(sink mem.Sink, budget uint64) {
	sp := sim.NewSpace()
	code := sp.NewCode(1 << 20)
	fDeflate := code.Func("deflate", 1536)
	fLongest := code.Func("longest_match", 768)

	data := sp.AddRegion("gzip", 1<<34)
	headAddr := data.Alloc(gzHashSize*4, 64)
	prevAddr := data.Alloc(gzWindow*4, 64)
	// Input streams: a fresh simulated block address per block models the
	// file flowing through the buffer cache.
	outAddr := data.Alloc(1<<20, 64)

	rng := trace.NewRNG(164)
	head := make([]int32, gzHashSize)
	prev := make([]int32, gzWindow)
	window := make([]byte, gzWindow+gzBlock)
	for i := range head {
		head[i] = -1
	}

	// genBlock fills buf with compressible pseudo-text (Markov-ish:
	// short repeated phrases).
	phrases := make([][]byte, 64)
	for i := range phrases {
		p := make([]byte, 4+rng.Intn(12))
		for j := range p {
			p[j] = byte('a' + rng.Intn(26))
		}
		phrases[i] = p
	}
	genBlock := func(buf []byte) {
		i := 0
		for i < len(buf) {
			p := phrases[rng.Intn(len(phrases))]
			n := copy(buf[i:], p)
			i += n
		}
	}

	cpu := sim.NewCPU(sink)
	hash := func(b []byte) uint32 {
		return (uint32(b[0])<<10 ^ uint32(b[1])<<5 ^ uint32(b[2])) & (gzHashSize - 1)
	}

	outPos := 0
	for cpu.Instrs < budget {
		// New input block at a fresh streaming address.
		inAddr := data.Alloc(gzBlock, 64)
		genBlock(window[gzWindow:])
		cpu.Enter(fDeflate)

		pos := gzWindow
		for pos < gzWindow+gzBlock-3 {
			// read input (line-granular: one load per 64 new bytes)
			if (pos-gzWindow)%64 == 0 {
				cpu.Load(inAddr + mem.Addr(pos-gzWindow))
			}
			h := hash(window[pos : pos+3])
			cpu.Load(headAddr + mem.Addr(h*4))
			cand := head[h]
			bestLen := 2
			cpu.Enter(fLongest)
			for c := 0; c < gzChainLen && cand >= 0; c++ {
				// candidate bytes live in the window: random-offset load
				cpu.Load(prevAddr + mem.Addr(cand&(gzWindow-1))*4)
				wpos := int(cand) % gzWindow
				l := 0
				for l < 64 && wpos+l < gzWindow && pos+l < len(window) && window[wpos+l] == window[pos+l] {
					l++
				}
				if l%8 == 0 {
					cpu.Load(inAddr + mem.Addr((pos-gzWindow)&^63))
				}
				cpu.Exec(uint64(4 + l/4))
				if l > bestLen {
					bestLen = l
				}
				cand = prev[cand&(gzWindow-1)]
			}
			cpu.Enter(fDeflate)
			// insert hash entries for the covered positions
			adv := 1
			if bestLen > 2 {
				adv = bestLen
			}
			for k := 0; k < adv && pos+k < gzWindow+gzBlock-3; k++ {
				hk := hash(window[pos+k : pos+k+3])
				prev[(pos+k)&(gzWindow-1)] = head[hk]
				head[hk] = int32((pos + k) & (gzWindow - 1))
				if k%4 == 0 {
					cpu.Store(headAddr + mem.Addr(hk*4))
					cpu.Store(prevAddr + mem.Addr(((pos+k)&(gzWindow-1))*4))
				}
				cpu.Exec(3)
			}
			// emit output token
			if outPos%64 == 0 {
				cpu.Store(outAddr + mem.Addr(outPos%(1<<20)))
			}
			outPos += 2
			pos += adv
			cpu.Exec(6)
		}
		// slide window: copy block tail into window head
		copy(window[:gzWindow], window[gzBlock:gzBlock+gzWindow])
		cpu.Exec(2048)
	}
}
