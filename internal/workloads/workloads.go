// Package workloads defines the workload abstraction used by every
// experiment: a named program that, when run, pushes a memory reference
// stream (I-fetches, loads, stores) plus instruction counts into a
// mem.Sink.
//
// The paper evaluates 13 SPEC CPU2000 and 5 Olden benchmarks on
// SimpleScalar/PISA. Those binaries and that toolchain are proprietary /
// unavailable, so this repository substitutes analogue kernels — real Go
// implementations of the same algorithm classes, instrumented with
// simulated addresses (package sim) — whose working-set shapes (size,
// circularity, randomness, phase structure, pointer chasing, code
// footprint) are calibrated to the paper's Table 1 and Figures 4/5.
// The Olden analogues implement the actual Olden algorithms (Barnes-Hut,
// bitonic sort, em3d, health, mst). See DESIGN.md §2 for the
// substitution rationale.
package workloads

import (
	"fmt"
	"sort"

	"repro/internal/mem"
)

// Workload is one benchmark analogue.
type Workload interface {
	// Name returns the benchmark identifier (e.g. "181.mcf", "em3d").
	Name() string
	// Suite returns "spec2000" or "olden".
	Suite() string
	// Description summarises the kernel and its working-set character.
	Description() string
	// Run executes the workload until at least budget instructions have
	// been accounted to sink (the final iteration may overshoot).
	Run(sink mem.Sink, budget uint64)
}

// Registry maps names to workload constructors, so each run gets fresh
// state.
type Registry struct {
	factories map[string]func() Workload
	order     []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{factories: make(map[string]func() Workload)}
}

// Register adds a workload factory. Duplicate names panic.
func (r *Registry) Register(name string, f func() Workload) {
	if _, dup := r.factories[name]; dup {
		//emlint:allowpanic init-time registry idiom: a duplicate name is a programming error caught on first run
		panic(fmt.Sprintf("workloads: duplicate %q", name))
	}
	r.factories[name] = f
	r.order = append(r.order, name)
}

// Names returns the registered names in registration order.
func (r *Registry) Names() []string { return append([]string(nil), r.order...) }

// SortedNames returns the registered names sorted alphabetically.
func (r *Registry) SortedNames() []string {
	n := r.Names()
	sort.Strings(n)
	return n
}

// New instantiates a fresh workload by name.
func (r *Registry) New(name string) (Workload, error) {
	f, ok := r.factories[name]
	if !ok {
		return nil, fmt.Errorf("workloads: unknown workload %q", name)
	}
	return f(), nil
}

// budgetSink wraps a sink and observes the instruction count, so
// workloads can cheaply test their budget.
type budgetSink struct {
	inner  mem.Sink
	instrs uint64
}

func (b *budgetSink) Access(addr mem.Addr, kind mem.Kind) { b.inner.Access(addr, kind) }
func (b *budgetSink) Instr(n uint64)                      { b.instrs += n; b.inner.Instr(n) }

// RunUntil is a helper for workloads structured as repeated outer
// iterations: it invokes iter until budget instructions have been
// consumed (at least one iteration always runs).
func RunUntil(sink mem.Sink, budget uint64, iter func(s mem.Sink)) {
	b := &budgetSink{inner: sink}
	for {
		iter(b)
		if b.instrs >= budget {
			return
		}
	}
}

// Base provides the identity boilerplate for workload implementations.
type Base struct {
	WName, WSuite, WDesc string
}

// Name implements Workload.
func (b Base) Name() string { return b.WName }

// Suite implements Workload.
func (b Base) Suite() string { return b.WSuite }

// Description implements Workload.
func (b Base) Description() string { return b.WDesc }
