package sampling

import (
	"context"
	"fmt"

	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/runner"
)

// MetricDef names one estimated metric and how to read it off a
// machine's stats.
type MetricDef struct {
	Machine string // "normal" | "migration"
	Name    string // a machine.Metric* constant
	Get     func(machine.Stats) uint64
}

// Metrics is the fixed set of per-interval metrics the sampler measures
// and reconstructs: the paper's headline miss counts for both machines
// plus the migration count. Order is part of the output contract
// (IntervalMeasure.Values and the estimate rows align to it).
var Metrics = []MetricDef{
	{"normal", machine.MetricIL1Misses, func(s machine.Stats) uint64 { return s.IL1Misses }},
	{"normal", machine.MetricDL1Misses, func(s machine.Stats) uint64 { return s.DL1Misses }},
	{"normal", machine.MetricL2Misses, func(s machine.Stats) uint64 { return s.L2Misses }},
	{"migration", machine.MetricIL1Misses, func(s machine.Stats) uint64 { return s.IL1Misses }},
	{"migration", machine.MetricDL1Misses, func(s machine.Stats) uint64 { return s.DL1Misses }},
	{"migration", machine.MetricL2Misses, func(s machine.Stats) uint64 { return s.L2Misses }},
	{"migration", machine.MetricMigrations, func(s machine.Stats) uint64 { return s.Migrations }},
}

// extract reads every metric into one vector.
func extract(normal, mig machine.Stats) []uint64 {
	v := make([]uint64, len(Metrics))
	for i, d := range Metrics {
		if d.Machine == "normal" {
			v[i] = d.Get(normal)
		} else {
			v[i] = d.Get(mig)
		}
	}
	return v
}

// Source replays the full deterministic event stream into sink. Chain
// jobs each call it afresh (like emsim's independent passes), so the
// stream must be reproducible: a workload generator or a recorded
// trace, never a live feed.
type Source func(sink mem.BatchSink) error

// SimConfig shapes the simulation pass.
type SimConfig struct {
	// Normal and Mig are the two machine configurations of the
	// experiment tee.
	Normal, Mig machine.Config
	// Policy and Topology are the normalized scenario names ("" for the
	// defaults); non-default policy state rides the warm-start
	// checkpoint's extension section exactly as emsim -checkpoint
	// writes it.
	Policy, Topology string
	// Workers sizes the chain worker pool (0 = all cores). Results
	// merge in chain order, so every worker count produces identical
	// output.
	Workers int
}

// IntervalMeasure is the full-fidelity measurement of one interval.
type IntervalMeasure struct {
	Interval int
	Cluster  int
	Role     string
	Events   uint64
	Instr    uint64
	// Values holds the per-interval metric deltas, aligned to Metrics.
	Values []uint64
}

// SimResult is the simulation pass's output.
type SimResult struct {
	// Measures come back ascending by interval index regardless of the
	// worker count.
	Measures []IntervalMeasure
	// DeliveredEvents counts events actually simulated (warmup + gaps +
	// measured intervals); the savings ratio is total/delivered.
	DeliveredEvents uint64
}

// stopChain is the panic sentinel that unwinds the source once a chain
// has delivered its last measured interval (generators cannot return
// early); runChain recovers it.
type stopChain struct{}

// chainTee fans one event stream out to both machines. The machines
// are re-pointed at each warm-start boundary, so the sink holds the tee
// by pointer.
type chainTee struct{ a, b mem.BatchSink }

// chainSink numbers events exactly like emsim's checkpoint sink,
// discards the chain's fast-forward prefix, fires the boundary hook at
// each cut event, and aborts at the chain's end. Batches are delivered
// in sub-spans that never straddle a cut, so the batched and scalar
// delivery paths act at identical events.
type chainSink struct {
	tee    *chainTee
	events uint64
	skip   uint64
	cuts   []uint64 // ascending, unique; the last cut is stopAt
	ci     int
	hook   func(event uint64)
	stopAt uint64

	// view is the reusable sub-batch header, so span splitting never
	// allocates.
	view mem.Batch
}

func (c *chainSink) boundary() {
	if c.ci < len(c.cuts) && c.events == c.cuts[c.ci] {
		c.hook(c.events)
		c.ci++
	}
	if c.events == c.stopAt {
		//emlint:allowpanic control-flow sentinel: generators cannot return early; recovered in runChain
		panic(stopChain{})
	}
}

func (c *chainSink) Access(addr mem.Addr, kind mem.Kind) {
	c.events++
	if c.events > c.skip {
		c.tee.a.Access(addr, kind)
		c.tee.b.Access(addr, kind)
	}
	c.boundary()
}

func (c *chainSink) Instr(n uint64) {
	c.events++
	if c.events > c.skip {
		c.tee.a.Instr(n)
		c.tee.b.Instr(n)
	}
	c.boundary()
}

// AccessBatch implements mem.BatchSink: spans split at the skip edge
// and at every cut, with the hook running once per boundary exactly
// where the scalar path's per-event call would have fired.
//
//emlint:batchpair Access
//emlint:batchpair Instr
func (c *chainSink) AccessBatch(b *mem.Batch) {
	i, n := 0, b.Len()
	for i < n {
		if c.events < c.skip {
			d := c.skip - c.events
			if rem := uint64(n - i); d > rem {
				d = rem
			}
			c.events += d
			i += int(d)
			c.boundary()
			continue
		}
		span := uint64(n - i)
		if c.ci < len(c.cuts) {
			if next := c.cuts[c.ci] - c.events; next < span {
				span = next
			}
		}
		c.view.Addr = b.Addr[i : i+int(span)]
		c.view.Kind = b.Kind[i : i+int(span)]
		c.tee.a.AccessBatch(&c.view)
		c.tee.b.AccessBatch(&c.view)
		c.events += span
		i += int(span)
		c.boundary()
	}
}

var _ mem.BatchSink = (*chainSink)(nil)

// chainRun is the per-chain job state.
type chainRun struct {
	cfg       SimConfig
	intervals []Interval
	measured  []Measured // this chain's measured intervals, ascending
	normal    *machine.Machine
	mig       *machine.Machine
	sink      *chainSink

	mi       int      // next measured interval to open
	open     bool     // a measured interval is in flight
	base     []uint64 // metric vector at the open interval's start
	measures []IntervalMeasure
	err      error
}

// cutsFor returns the ascending unique boundary events of the chain:
// each measured interval's start and end.
func cutsFor(intervals []Interval, measured []Measured) []uint64 {
	var cuts []uint64
	for _, m := range measured {
		iv := intervals[m.Interval]
		if n := len(cuts); n == 0 || cuts[n-1] < iv.StartEvent {
			cuts = append(cuts, iv.StartEvent)
		}
		cuts = append(cuts, iv.EndEvent)
	}
	return cuts
}

// hook runs at each cut event: close the open measured interval and/or
// warm-start the next one through an EMCKPT1 snapshot round-trip.
func (r *chainRun) hook(event uint64) {
	if r.err != nil {
		return
	}
	if r.open && event == r.intervals[r.measured[r.mi].Interval].EndEvent {
		m := r.measured[r.mi]
		iv := r.intervals[m.Interval]
		cur := extract(r.normal.Stats, r.mig.Stats)
		for i := range cur {
			cur[i] -= r.base[i]
		}
		r.measures = append(r.measures, IntervalMeasure{
			Interval: m.Interval,
			Cluster:  m.Cluster,
			Role:     m.Role,
			Events:   iv.Events(),
			Instr:    iv.Instr,
			Values:   cur,
		})
		r.open = false
		r.mi++
	}
	if !r.open && r.mi < len(r.measured) && event == r.intervals[r.measured[r.mi].Interval].StartEvent {
		if err := r.warmStart(event); err != nil {
			r.err = err
			//emlint:allowpanic control-flow sentinel: generators cannot return early; recovered in runChain
			panic(stopChain{})
		}
		r.base = extract(r.normal.Stats, r.mig.Stats)
		r.open = true
	}
}

// warmStart replaces both machines with fresh ones restored from an
// EMCKPT1 round-trip of their own snapshots — the measured interval
// starts from checkpoint bytes, so the estimate inherits the resume
// path's bit-exactness guarantee (and its tests).
func (r *chainRun) warmStart(event uint64) error {
	ns, err := r.normal.Snapshot()
	if err != nil {
		return err
	}
	ms, err := r.mig.Snapshot()
	if err != nil {
		return err
	}
	ck := &machine.Checkpoint{
		Cores:  r.cfg.Mig.Cores,
		Events: event,
		Machines: []machine.NamedSnapshot{
			{Name: "normal", Snap: ns},
			{Name: "migration", Snap: ms},
		},
	}
	if r.cfg.Policy != "" || r.cfg.Topology != "" {
		ps, err := r.mig.PolicyState()
		if err != nil {
			return err
		}
		ck.SetExt(&machine.CheckpointExt{
			Policy:   r.cfg.Policy,
			Topology: r.cfg.Topology,
			PolicyStates: []machine.NamedPolicyState{
				{Name: "migration", State: ps},
			},
		})
	}
	ck, err = machine.RoundTripCheckpoint(ck)
	if err != nil {
		return err
	}
	normal, err := machine.New(r.cfg.Normal)
	if err != nil {
		return err
	}
	mig, err := machine.New(r.cfg.Mig)
	if err != nil {
		return err
	}
	rns, err := ck.Machine("normal")
	if err != nil {
		return err
	}
	if err := normal.Restore(*rns); err != nil {
		return err
	}
	rms, err := ck.Machine("migration")
	if err != nil {
		return err
	}
	if err := mig.Restore(*rms); err != nil {
		return err
	}
	if ext := ck.Ext(); ext != nil {
		ps, err := ext.State("migration")
		if err != nil {
			return err
		}
		if err := mig.SetPolicyState(ps); err != nil {
			return err
		}
	}
	r.normal, r.mig = normal, mig
	r.sink.tee.a, r.sink.tee.b = normal, mig
	return nil
}

// runChain executes one chain: fast-forward, warmup, measure.
func runChain(src Source, intervals []Interval, plan Plan, chain Chain, cfg SimConfig) (res []IntervalMeasure, err error) {
	normal, err := machine.New(cfg.Normal)
	if err != nil {
		return nil, err
	}
	mig, err := machine.New(cfg.Mig)
	if err != nil {
		return nil, err
	}
	measured := make([]Measured, len(chain.Measured))
	for i, mi := range chain.Measured {
		measured[i] = plan.Measured[mi]
	}
	run := &chainRun{cfg: cfg, intervals: intervals, measured: measured, normal: normal, mig: mig}
	sink := &chainSink{
		tee:    &chainTee{a: normal, b: mig},
		skip:   chain.SkipEvents,
		cuts:   cutsFor(intervals, measured),
		hook:   run.hook,
		stopAt: intervals[chain.LastInterval].EndEvent,
	}
	run.sink = sink

	stopped := func() (stopped bool) {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(stopChain); ok {
					stopped = true
					return
				}
				//emlint:allowpanic re-raise of a foreign panic captured by the sentinel recover
				panic(r)
			}
		}()
		// A chain with no fast-forward measures its first interval from
		// event 0: that cut sits before the first delivered event, so it
		// fires here rather than from a sink call.
		sink.boundary()
		err = src(sink)
		return false
	}()
	if err != nil {
		return nil, err
	}
	if run.err != nil {
		return nil, run.err
	}
	if !stopped || len(run.measures) != len(measured) {
		return nil, fmt.Errorf("sampling: stream ended at event %d before chain [%d..%d] completed (%d/%d intervals measured)",
			sink.events, chain.FirstInterval, chain.LastInterval, len(run.measures), len(measured))
	}
	return run.measures, nil
}

// Simulate runs every chain of the plan over the worker pool and
// returns the per-interval measurements in interval order. Chains are
// independent jobs over the deterministic source, merged in index
// order, so the result is byte-identical for every worker count.
func Simulate(ctx context.Context, src Source, intervals []Interval, plan Plan, cfg SimConfig) (SimResult, error) {
	chains := plan.Chains
	results, err := runner.Map(ctx, len(chains), runner.Config{Workers: cfg.Workers},
		func(_ context.Context, i int) ([]IntervalMeasure, error) {
			return runChain(src, intervals, plan, chains[i], cfg)
		})
	if err != nil {
		return SimResult{}, err
	}
	var out SimResult
	for _, ms := range results {
		out.Measures = append(out.Measures, ms...)
	}
	out.DeliveredEvents = plan.DeliveredEvents(intervals)
	return out, nil
}
