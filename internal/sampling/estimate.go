package sampling

import "math"

// Estimate is one reconstructed full-run metric with its error bar.
type Estimate struct {
	Machine string  `json:"machine"`
	Metric  string  `json:"metric"`
	Total   float64 `json:"total"`
	Rate    float64 `json:"rate"` // Total per retired instruction
	StdErr  float64 `json:"stderr"`
	Lo      float64 `json:"lo"` // Total - z*StdErr, clamped at 0
	Hi      float64 `json:"hi"` // Total + z*StdErr
}

// zCritical is the normal 95% critical value the error bars use.
const zCritical = 1.96

// relSEFloor floors the reported standard error at a fraction of the
// estimated total when any cluster was only partially measured: the
// one-probe variance estimate is itself high-variance, and a zero bar
// on an extrapolated estimate would claim impossible certainty. Exact
// reconstructions (every cluster fully measured, e.g. K == M) keep
// their zero bars.
const relSEFloor = 0.02

// Estimates reconstructs the full-run totals from the measured
// intervals by stratified estimation: each cluster contributes its size
// times the mean of its measured intervals, and the variance sums the
// per-cluster sample variances with finite-population correction (so a
// fully measured cluster contributes none). Iteration is in fixed
// cluster/metric order — same inputs, byte-identical estimates.
func Estimates(plan Plan, sim SimResult, totalInstr uint64) []Estimate {
	k := plan.Clusters.K()
	nm := len(Metrics)
	sum := make([][]float64, k)
	sumsq := make([][]float64, k)
	for c := range sum {
		sum[c] = make([]float64, nm)
		sumsq[c] = make([]float64, nm)
	}
	n := make([]int, k)
	for _, ms := range sim.Measures {
		c := ms.Cluster
		n[c]++
		for j, v := range ms.Values {
			f := float64(v)
			sum[c][j] += f
			sumsq[c][j] += f * f
		}
	}
	exact := true
	for c := 0; c < k; c++ {
		if n[c] < plan.Clusters.Size[c] {
			exact = false
		}
	}

	out := make([]Estimate, nm)
	for j, def := range Metrics {
		var total, variance float64
		for c := 0; c < k; c++ {
			if n[c] == 0 {
				continue
			}
			N := float64(plan.Clusters.Size[c])
			nc := float64(n[c])
			mean := sum[c][j] / nc
			total += N * mean
			if n[c] >= 2 && plan.Clusters.Size[c] > n[c] {
				// Sample variance via the sum-of-squares identity; the
				// clamp absorbs float cancellation on near-equal values.
				s2 := (sumsq[c][j] - nc*mean*mean) / (nc - 1)
				if s2 < 0 {
					s2 = 0
				}
				variance += N * N * (1 - nc/N) * s2 / nc
			}
		}
		se := math.Sqrt(variance)
		if !exact && se < relSEFloor*total {
			se = relSEFloor * total
		}
		if !exact && total == 0 && len(sim.Measures) > 0 {
			// Rare-event metric with zero observed occurrences: the
			// point estimate is 0, but a zero-width bar would claim the
			// full run has none. Rule of three: at 95% the per-interval
			// rate is below 3/n, so the full-run total is below 3*M/n;
			// report that as the upper bar.
			se = 3 * float64(len(plan.Clusters.Assign)) / float64(len(sim.Measures)) / zCritical
		}
		lo := total - zCritical*se
		if lo < 0 {
			lo = 0
		}
		e := Estimate{
			Machine: def.Machine,
			Metric:  def.Name,
			Total:   total,
			StdErr:  se,
			Lo:      lo,
			Hi:      total + zCritical*se,
		}
		if totalInstr > 0 {
			e.Rate = total / float64(totalInstr)
		}
		out[j] = e
	}
	return out
}
