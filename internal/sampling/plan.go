package sampling

// Planning: which intervals to simulate, and how to batch them into
// chains so one fast-forward pass serves several measured intervals.

// Measurement roles. Every cluster measures its medoid; clusters with
// at least two members also measure the member farthest from the medoid
// (the "probe"), which is what records the within-cluster variance the
// error bars are built from.
const (
	RoleMedoid = "medoid"
	RoleProbe  = "probe"
)

// Measured is one interval selected for full-fidelity simulation.
type Measured struct {
	Interval int // interval index
	Cluster  int
	Role     string
}

// Chain is one independent simulation job: fast-forward (generate
// without delivering) to the start of FirstInterval, deliver intervals
// FirstInterval..LastInterval into the machines, measuring the Measured
// subset. Consecutive measured intervals whose warmup windows touch
// share a chain, so the stream between them is delivered once and the
// machines stay warm across the gap.
type Chain struct {
	// SkipEvents is the fast-forward prefix (== the StartEvent of
	// FirstInterval).
	SkipEvents    uint64
	FirstInterval int
	LastInterval  int
	// Measured indexes into Plan.Measured, ascending.
	Measured []int
}

// Plan is the full sampling schedule.
type Plan struct {
	Clusters Clusters
	Measured []Measured // ascending by interval index
	Chains   []Chain
}

// NewPlan selects the measured intervals for a clustering and groups
// them into chains with warmup intervals of unmeasured delivery before
// each cold start. Warmup counts intervals, not events; chains merge
// whenever delivery would be contiguous or overlapping.
func NewPlan(intervals []Interval, cl Clusters, warmup int) Plan {
	if warmup < 0 {
		warmup = 0
	}
	p := Plan{Clusters: cl}

	// Select medoid + farthest member per cluster.
	probe := make([]int, cl.K())
	probeDist := make([]float64, cl.K())
	for c := range probe {
		probe[c] = -1
	}
	for i := range intervals {
		c := cl.Assign[i]
		if c < 0 || i == cl.Medoid[c] {
			continue
		}
		d := sigDist(intervals[i].Sig, intervals[cl.Medoid[c]].Sig)
		if probe[c] == -1 || d > probeDist[c] {
			probe[c], probeDist[c] = i, d
		}
	}
	selected := make(map[int]Measured, 2*cl.K())
	for c := 0; c < cl.K(); c++ {
		selected[cl.Medoid[c]] = Measured{Interval: cl.Medoid[c], Cluster: c, Role: RoleMedoid}
		if probe[c] != -1 {
			selected[probe[c]] = Measured{Interval: probe[c], Cluster: c, Role: RoleProbe}
		}
	}
	// Ascending interval order (deterministic: indexes, not map order).
	for i := range intervals {
		if m, ok := selected[i]; ok {
			p.Measured = append(p.Measured, m)
		}
	}

	// Chain the measured intervals.
	for mi, m := range p.Measured {
		first := m.Interval - warmup
		if first < 0 {
			first = 0
		}
		if n := len(p.Chains); n > 0 && first <= p.Chains[n-1].LastInterval+1 {
			c := &p.Chains[n-1]
			c.LastInterval = m.Interval
			c.Measured = append(c.Measured, mi)
			continue
		}
		p.Chains = append(p.Chains, Chain{
			SkipEvents:    intervals[first].StartEvent,
			FirstInterval: first,
			LastInterval:  m.Interval,
			Measured:      []int{mi},
		})
	}
	return p
}

// DeliveredEvents returns how many events the plan simulates at full
// fidelity (warmup + gaps + measured intervals across all chains).
func (p Plan) DeliveredEvents(intervals []Interval) uint64 {
	var d uint64
	for _, c := range p.Chains {
		d += intervals[c.LastInterval].EndEvent - intervals[c.FirstInterval].StartEvent
	}
	return d
}
