package sampling

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/trace"
)

// phasedBody emits reps repetitions of two visibly different phases —
// a tight 16-line loop and a 4096-line streaming sweep — so clustering
// has real structure to find. One Access + one Instr(2) per step.
func phasedBody(sink mem.Sink, reps int) {
	for r := 0; r < reps; r++ {
		for i := 0; i < 1500; i++ {
			sink.Access(mem.AddrOf(mem.Line(i%16), 6), mem.Load)
			sink.Instr(2)
		}
		for i := 0; i < 1500; i++ {
			line := mem.Line((r*1500+i)%4096 + 1<<14)
			kind := mem.Load
			if i%5 == 0 {
				kind = mem.Store
			}
			sink.Access(mem.AddrOf(line, 6), kind)
			sink.Instr(2)
		}
	}
}

// phasedSource drives phasedBody scalar (one sink call per record).
func phasedSource(reps int) Source {
	return func(sink mem.BatchSink) error {
		phasedBody(sink, reps)
		return nil
	}
}

// phasedBatchedSource drives the identical stream through a Batcher.
func phasedBatchedSource(reps int) Source {
	return func(sink mem.BatchSink) error {
		ba := mem.NewBatcher(sink, 0)
		phasedBody(ba, reps)
		ba.Flush()
		return nil
	}
}

// capacityBody alternates a cache-friendly 16-line loop with a
// circular sweep over 9000 lines — larger than the 8192-line paper L2,
// so the sweep misses at full rate in steady state. Sampling can only
// extrapolate recurring behaviour; a cold-miss-dominated stream (every
// line touched once) is fundamentally outside its error model, so the
// accuracy tests drive this stream rather than a first-touch one.
func capacityBody(sink mem.Sink, reps int) {
	pos := 0
	for r := 0; r < reps; r++ {
		for i := 0; i < 1500; i++ {
			sink.Access(mem.AddrOf(mem.Line(i%16), 6), mem.Load)
			sink.Instr(2)
		}
		for i := 0; i < 10000; i++ {
			sink.Access(mem.AddrOf(mem.Line(pos%9000+1<<14), 6), mem.Load)
			sink.Instr(2)
			pos++
		}
	}
}

func capacitySource(reps int) Source {
	return func(sink mem.BatchSink) error {
		ba := mem.NewBatcher(sink, 0)
		capacityBody(ba, reps)
		ba.Flush()
		return nil
	}
}

func profile(t *testing.T, src Source, interval uint64) (*Profiler, []Interval) {
	t.Helper()
	p, err := NewProfiler(interval, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := src(p); err != nil {
		t.Fatal(err)
	}
	return p, p.Finish()
}

func TestProfilerCuts(t *testing.T) {
	p, ivs := profile(t, phasedSource(4), 1000)
	// 4 reps x 3000 steps x 2 instr = 24000 instr -> 24 intervals.
	if len(ivs) != 24 {
		t.Fatalf("got %d intervals, want 24", len(ivs))
	}
	var events, instr, refs uint64
	for i, iv := range ivs {
		if iv.Index != i {
			t.Fatalf("interval %d has Index %d", i, iv.Index)
		}
		if iv.StartEvent != events {
			t.Fatalf("interval %d starts at %d, want %d", i, iv.StartEvent, events)
		}
		if iv.Instr != 1000 {
			t.Fatalf("interval %d retired %d instr, want 1000", i, iv.Instr)
		}
		if len(iv.Sig) == 0 {
			t.Fatalf("interval %d has empty signature", i)
		}
		events = iv.EndEvent
		instr += iv.Instr
		refs += iv.Refs
	}
	if events != p.Events() {
		t.Fatalf("intervals cover %d events, profiler saw %d", events, p.Events())
	}
	if instr != p.TotalInstr() || instr != 24000 {
		t.Fatalf("intervals retire %d instr, profiler counted %d, want 24000", instr, p.TotalInstr())
	}
	if refs != 12000 {
		t.Fatalf("intervals record %d refs, want 12000", refs)
	}
}

func TestProfilerTrailingPartial(t *testing.T) {
	// 2 reps = 12000 instr in 6000 events per rep; cut every 7000 instr
	// leaves a 5000-instr trailing partial that Finish must close.
	_, ivs := profile(t, phasedSource(2), 7000)
	if len(ivs) != 2 {
		t.Fatalf("got %d intervals, want 2", len(ivs))
	}
	if ivs[1].Instr != 5000 {
		t.Fatalf("trailing interval retired %d instr, want 5000", ivs[1].Instr)
	}
}

func TestProfilerBatchScalarParity(t *testing.T) {
	_, scalar := profile(t, phasedSource(4), 1000)
	_, batched := profile(t, phasedBatchedSource(4), 1000)
	if !reflect.DeepEqual(scalar, batched) {
		t.Fatal("batched profiling disagrees with scalar")
	}
}

func TestClusterDeterminism(t *testing.T) {
	_, ivs := profile(t, phasedSource(6), 1000)
	a := Cluster(ivs, 4, 42)
	b := Cluster(ivs, 4, 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different clusterings")
	}
	if a.K() < 1 || a.K() > 4 {
		t.Fatalf("got %d clusters, want 1..4", a.K())
	}
	total := 0
	for c, n := range a.Size {
		if n == 0 {
			t.Fatalf("cluster %d is empty", c)
		}
		total += n
	}
	if total != len(ivs) {
		t.Fatalf("cluster sizes sum to %d, want %d", total, len(ivs))
	}
	for c, m := range a.Medoid {
		if a.Assign[m] != c {
			t.Fatalf("medoid %d of cluster %d assigned to cluster %d", m, c, a.Assign[m])
		}
	}
	// The two phases are far apart in signature space; k=2 must
	// separate them rather than merge everything.
	if two := Cluster(ivs, 2, 42); two.K() != 2 {
		t.Fatalf("k=2 collapsed to %d clusters", two.K())
	}
}

func TestClusterClamp(t *testing.T) {
	_, ivs := profile(t, phasedSource(1), 1000)
	cl := Cluster(ivs, 100, 1)
	if cl.K() > len(ivs) {
		t.Fatalf("%d clusters for %d intervals", cl.K(), len(ivs))
	}
	for i, c := range cl.Assign {
		if c < 0 || c >= cl.K() {
			t.Fatalf("interval %d assigned to cluster %d of %d", i, c, cl.K())
		}
	}
}

func TestPlanChainsAndWarmup(t *testing.T) {
	_, ivs := profile(t, phasedSource(6), 1000)
	cl := Cluster(ivs, 3, 42)
	plan := NewPlan(ivs, cl, 1)
	if len(plan.Measured) < cl.K() {
		t.Fatalf("%d measured intervals for %d clusters", len(plan.Measured), cl.K())
	}
	for i := 1; i < len(plan.Measured); i++ {
		if plan.Measured[i].Interval <= plan.Measured[i-1].Interval {
			t.Fatal("measured intervals not strictly ascending")
		}
	}
	seen := 0
	for ci, c := range plan.Chains {
		if c.SkipEvents != ivs[c.FirstInterval].StartEvent {
			t.Fatalf("chain %d skips %d events, want %d", ci, c.SkipEvents, ivs[c.FirstInterval].StartEvent)
		}
		if c.FirstInterval > c.LastInterval {
			t.Fatalf("chain %d runs [%d..%d]", ci, c.FirstInterval, c.LastInterval)
		}
		for _, mi := range c.Measured {
			m := plan.Measured[mi]
			if m.Interval < c.FirstInterval || m.Interval > c.LastInterval {
				t.Fatalf("chain %d [%d..%d] does not cover measured interval %d", ci, c.FirstInterval, c.LastInterval, m.Interval)
			}
			// Warmup: at least 1 delivered interval precedes each
			// measured one unless the chain starts at the stream head or
			// the preceding interval is itself inside the chain.
			if m.Interval > 0 && m.Interval-1 < c.FirstInterval {
				t.Fatalf("measured interval %d has no warmup in chain %d", m.Interval, ci)
			}
			seen++
		}
	}
	if seen != len(plan.Measured) {
		t.Fatalf("chains cover %d measured intervals, want %d", seen, len(plan.Measured))
	}
	if plan.DeliveredEvents(ivs) == 0 || plan.DeliveredEvents(ivs) > ivs[len(ivs)-1].EndEvent {
		t.Fatalf("delivered events %d out of range", plan.DeliveredEvents(ivs))
	}
}

// fullTee runs the source at full fidelity through both machines and
// returns the per-interval metric vectors plus the totals.
func fullTee(t *testing.T, src Source, cfg SimConfig) (normal, mig machine.Stats) {
	t.Helper()
	n, err := machine.New(cfg.Normal)
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(cfg.Mig)
	if err != nil {
		t.Fatal(err)
	}
	if err := src(n); err != nil {
		t.Fatal(err)
	}
	if err := src(m); err != nil {
		t.Fatal(err)
	}
	return n.Stats, m.Stats
}

func testSimConfig(t *testing.T) SimConfig {
	t.Helper()
	mig, err := machine.MigrationConfigScenario(4, "", "")
	if err != nil {
		t.Fatal(err)
	}
	return SimConfig{Normal: machine.NormalConfig(), Mig: mig}
}

// TestExactWhenEveryIntervalMeasured is the keystone correctness test:
// with k == M every interval is its own cluster, the plan measures all
// of them, and the stratified estimate must reproduce the full-run
// totals exactly with zero-width error bars — warm-starting through an
// EMCKPT1 round-trip at every boundary included.
func TestExactWhenEveryIntervalMeasured(t *testing.T) {
	src := phasedBatchedSource(3)
	p, ivs := profile(t, src, 1000)
	cfg := testSimConfig(t)
	cl := Cluster(ivs, len(ivs), 42)
	if cl.K() != len(ivs) {
		t.Fatalf("k=M produced %d clusters for %d intervals", cl.K(), len(ivs))
	}
	plan := NewPlan(ivs, cl, 0)
	sim, err := Simulate(context.Background(), src, ivs, plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sim.Measures) != len(ivs) {
		t.Fatalf("measured %d intervals, want %d", len(sim.Measures), len(ivs))
	}
	ests := Estimates(plan, sim, p.TotalInstr())
	normal, mig := fullTee(t, src, cfg)
	actual := extract(normal, mig)
	for i, e := range ests {
		if e.StdErr != 0 {
			t.Errorf("%s/%s: stderr %g, want 0 for exact reconstruction", e.Machine, e.Metric, e.StdErr)
		}
		if e.Total != float64(actual[i]) {
			t.Errorf("%s/%s: estimate %g, actual %d", e.Machine, e.Metric, e.Total, actual[i])
		}
	}
}

// TestSampledEstimateWithinBars runs a genuine sampled configuration
// (k << M) and checks every actual total lands inside its reported 95%
// interval, at a real event savings.
func TestSampledEstimateWithinBars(t *testing.T) {
	src := capacitySource(6)
	p, ivs := profile(t, src, 2000)
	cfg := testSimConfig(t)
	cl := Cluster(ivs, 4, 42)
	plan := NewPlan(ivs, cl, 1)
	sim, err := Simulate(context.Background(), src, ivs, plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sim.DeliveredEvents*2 >= p.Events() {
		t.Fatalf("sampling delivered %d of %d events — no real savings", sim.DeliveredEvents, p.Events())
	}
	ests := Estimates(plan, sim, p.TotalInstr())
	normal, mig := fullTee(t, src, cfg)
	actual := extract(normal, mig)
	for i, e := range ests {
		f := float64(actual[i])
		if f < e.Lo || f > e.Hi {
			t.Errorf("%s/%s: actual %g outside [%g, %g] (estimate %g)", e.Machine, e.Metric, f, e.Lo, e.Hi, e.Total)
		}
	}
}

// TestSimulateWorkerInvariance pins the -j contract: serial and
// parallel chain execution produce identical measures.
func TestSimulateWorkerInvariance(t *testing.T) {
	src := phasedBatchedSource(6)
	_, ivs := profile(t, src, 1000)
	cfg := testSimConfig(t)
	cl := Cluster(ivs, 4, 42)
	plan := NewPlan(ivs, cl, 1)
	var base SimResult
	for i, workers := range []int{1, 2, 4} {
		cfg.Workers = workers
		sim, err := Simulate(context.Background(), src, ivs, plan, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			base = sim
			continue
		}
		if !reflect.DeepEqual(base, sim) {
			t.Fatalf("workers=%d disagrees with workers=1", workers)
		}
	}
}

// TestSimulateScalarBatchParity: the chain sink's scalar and batched
// delivery paths must act at identical events.
func TestSimulateScalarBatchParity(t *testing.T) {
	scalar := phasedSource(5)
	batched := phasedBatchedSource(5)
	_, ivs := profile(t, scalar, 1000)
	cfg := testSimConfig(t)
	cl := Cluster(ivs, 3, 42)
	plan := NewPlan(ivs, cl, 1)
	a, err := Simulate(context.Background(), scalar, ivs, plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(context.Background(), batched, ivs, plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("scalar chain delivery disagrees with batched")
	}
}

// TestSimulatePolicyScenario exercises the warm-start path that rides
// the checkpoint extension (non-default policy + topology state).
func TestSimulatePolicyScenario(t *testing.T) {
	src := phasedBatchedSource(4)
	p, ivs := profile(t, src, 1000)
	mig, err := machine.MigrationConfigScenario(4, "numa", "cluster")
	if err != nil {
		t.Fatal(err)
	}
	cfg := SimConfig{Normal: machine.NormalConfig(), Mig: mig, Policy: "numa", Topology: "cluster"}
	cl := Cluster(ivs, len(ivs), 7)
	plan := NewPlan(ivs, cl, 0)
	sim, err := Simulate(context.Background(), src, ivs, plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ests := Estimates(plan, sim, p.TotalInstr())
	normal, migStats := fullTee(t, src, cfg)
	actual := extract(normal, migStats)
	for i, e := range ests {
		if e.Total != float64(actual[i]) {
			t.Errorf("%s/%s: estimate %g, actual %d", e.Machine, e.Metric, e.Total, actual[i])
		}
	}
}

func TestEstimateMath(t *testing.T) {
	// Two clusters: cluster 0 sized 3 with measures {10, 20}; cluster 1
	// sized 1 fully measured at {7}.
	plan := Plan{Clusters: Clusters{Medoid: []int{0, 3}, Assign: []int{0, 0, 0, 1}, Size: []int{3, 1}}}
	nm := len(Metrics)
	vals := func(v uint64) []uint64 {
		out := make([]uint64, nm)
		for i := range out {
			out[i] = v
		}
		return out
	}
	sim := SimResult{Measures: []IntervalMeasure{
		{Interval: 0, Cluster: 0, Role: RoleMedoid, Values: vals(10)},
		{Interval: 2, Cluster: 0, Role: RoleProbe, Values: vals(20)},
		{Interval: 3, Cluster: 1, Role: RoleMedoid, Values: vals(7)},
	}}
	ests := Estimates(plan, sim, 1000)
	// Total = 3*15 + 1*7 = 52. Variance = 3^2 * (1 - 2/3) * 50 / 2 = 75
	// (s^2 of {10,20} is 50), so stderr = sqrt(75) ~ 8.66.
	e := ests[0]
	if e.Total != 52 {
		t.Fatalf("total %g, want 52", e.Total)
	}
	if e.Rate != 52.0/1000 {
		t.Fatalf("rate %g, want 0.052", e.Rate)
	}
	if e.StdErr < 8.66 || e.StdErr > 8.67 {
		t.Fatalf("stderr %g, want ~8.660", e.StdErr)
	}
	if e.Lo >= e.Total || e.Hi <= e.Total {
		t.Fatalf("bars [%g, %g] do not bracket %g", e.Lo, e.Hi, e.Total)
	}
}

func TestEstimateSEFloor(t *testing.T) {
	// One cluster of 3 with two identical measures: sample variance 0,
	// but the reconstruction extrapolates, so the floor must keep the
	// bar open.
	plan := Plan{Clusters: Clusters{Medoid: []int{0}, Assign: []int{0, 0, 0}, Size: []int{3}}}
	nm := len(Metrics)
	vals := make([]uint64, nm)
	for i := range vals {
		vals[i] = 100
	}
	sim := SimResult{Measures: []IntervalMeasure{
		{Interval: 0, Cluster: 0, Role: RoleMedoid, Values: vals},
		{Interval: 2, Cluster: 0, Role: RoleProbe, Values: vals},
	}}
	e := Estimates(plan, sim, 0)[0]
	if e.Total != 300 {
		t.Fatalf("total %g, want 300", e.Total)
	}
	if e.StdErr != relSEFloor*300 {
		t.Fatalf("stderr %g, want floored %g", e.StdErr, relSEFloor*300)
	}
}

func TestSigDist(t *testing.T) {
	if d := sigDist([]float64{1, 0.5}, []float64{0.5, 1}); d != 1 {
		t.Fatalf("L1 distance %g, want 1", d)
	}
	if d := sigDist([]float64{1, 1, 0.5}, []float64{1}); d != 1.5 {
		t.Fatalf("unequal-length distance %g, want 1.5", d)
	}
	if d := sigDist(nil, []float64{0.25}); d != 0.25 {
		t.Fatalf("nil-side distance %g, want 0.25", d)
	}
}

// TestChainSinkGenerator drives a chain off a Circular generator (the
// machine-package idiom) to cover the skip-then-measure fast path with
// an Instr-heavy stream.
func TestChainSinkGenerator(t *testing.T) {
	src := func(sink mem.BatchSink) error {
		// Fresh generator per pass: every chain job replays the stream
		// from the top.
		g := trace.NewCircular(1 << 10)
		ba := mem.NewBatcher(sink, 0)
		for i := uint64(0); i < 6000; i++ {
			ba.Access(mem.AddrOf(mem.Line(g.Next()), 6), mem.Load)
			ba.Instr(1)
		}
		ba.Flush()
		return nil
	}
	p, ivs := profile(t, src, 500)
	if len(ivs) != 12 {
		t.Fatalf("got %d intervals, want 12", len(ivs))
	}
	cfg := testSimConfig(t)
	cl := Cluster(ivs, 2, 9)
	plan := NewPlan(ivs, cl, 2)
	sim, err := Simulate(context.Background(), src, ivs, plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sim.Measures) != len(plan.Measured) {
		t.Fatalf("measured %d intervals, want %d", len(sim.Measures), len(plan.Measured))
	}
	// The generator restarts per pass, so measuring everything must
	// reproduce the tee exactly (regression guard for source reuse).
	_ = p
}
