// Package sampling implements interval sampling with checkpoint
// warm-start: the SimPoint-style recipe of "Improving the
// Representativeness of Simulation Intervals for the Cache Memory
// System" applied to the execution-migration experiments. One cheap
// machine-free profiling pass splits the event stream into fixed-size
// instruction intervals and fingerprints each with its lrustack
// working-set signature; a deterministic seeded k-medoids groups the
// fingerprints; only the representative intervals are simulated at full
// fidelity (each warm-started through an EMCKPT1 snapshot round-trip at
// its start boundary); and the full-run metric totals are reconstructed
// as stratified estimates with per-metric error bars from the recorded
// within-cluster variance.
//
// Everything here is deterministic: the same stream, interval size,
// cluster count and seed produce byte-identical estimates, and the
// chain jobs of the simulation pass merge in index order so serial and
// parallel runs agree (the repository's -j contract).
package sampling

import (
	"fmt"

	"repro/internal/lrustack"
	"repro/internal/mem"
)

// DefaultStackLimit caps the profiling pass's LRU stack at twice the
// largest paper threshold (16 MB of 64-byte lines), the same
// bounded-memory convention as the lrustack/affinity caps: signatures
// stay exact for every threshold in the grid while a pathological
// working set cannot grow the profiler without bound.
const DefaultStackLimit = 1 << 19

// Interval is one fixed-instruction-count slice of the event stream.
type Interval struct {
	Index int
	// StartEvent and EndEvent delimit the interval on the shared event
	// numbering (one count per Access or Instr sink call, the same
	// numbering emsim's checkpoint sink uses): the interval covers
	// events StartEvent+1 .. EndEvent, so StartEvent doubles as the
	// fast-forward count for a pass that begins at this interval.
	StartEvent uint64
	EndEvent   uint64
	// Instr is the number of instructions retired in the interval and
	// Refs the number of access records; the final interval of a stream
	// may run short of the configured size.
	Instr uint64
	Refs  uint64
	// Sig is the interval's working-set signature
	// (lrustack.Profile.Signature over the paper threshold grid).
	Sig []float64
}

// Events returns the number of sink events the interval spans.
func (iv Interval) Events() uint64 { return iv.EndEvent - iv.StartEvent }

// Profiler is the single cheap profiling pass: a mem.BatchSink that
// numbers events exactly like the simulation sinks, carves the stream
// at instruction-count boundaries, and fingerprints each interval from
// one persistent capped LRU stack (the stack keeps cross-interval reuse
// history; the per-interval profile counts reset at every cut). No
// machine is simulated, which is what makes the pass cheap relative to
// the two-machine tee it stands in for.
type Profiler struct {
	interval uint64 // instructions per interval
	shift    uint

	stack *lrustack.Stack
	prof  *lrustack.Profile

	events    uint64 // events seen (Access + Instr calls)
	instr     uint64 // instructions retired
	next      uint64 // instruction threshold that ends the current interval
	start     uint64 // event count at the current interval's start
	lastInstr uint64 // instructions retired before the current interval

	intervals []Interval
}

// NewProfiler builds a profiler cutting every intervalInstr
// instructions, with lines derived from addresses by lineShift. The
// signature grid is the paper's Figure 4/5 threshold set.
func NewProfiler(intervalInstr uint64, lineShift uint) (*Profiler, error) {
	if intervalInstr == 0 {
		return nil, fmt.Errorf("sampling: interval must be positive")
	}
	return &Profiler{
		interval: intervalInstr,
		shift:    lineShift,
		stack:    lrustack.NewLimited(DefaultStackLimit),
		prof:     lrustack.NewProfile(lrustack.PaperThresholds(lineShift)),
		next:     intervalInstr,
	}, nil
}

// Access implements mem.Sink: one reference through the stack into the
// current interval's profile.
func (p *Profiler) Access(addr mem.Addr, kind mem.Kind) {
	p.events++
	p.prof.Record(p.stack.Ref(mem.LineOf(addr, p.shift)))
}

// Instr implements mem.Sink. Interval boundaries land exactly on the
// Instr event that crosses the threshold, so a cut is always a
// well-defined event index the simulation pass can fast-forward to.
func (p *Profiler) Instr(n uint64) {
	p.events++
	p.instr += n
	if p.instr >= p.next {
		p.cut()
	}
}

// AccessBatch implements mem.BatchSink by replaying the batch
// record-by-record: interval cuts depend on per-record instruction
// counts, so a batch is split exactly where the scalar path would cut.
//
//emlint:batchpair Access
//emlint:batchpair Instr
func (p *Profiler) AccessBatch(b *mem.Batch) {
	kinds, addrs := b.Kind, b.Addr
	for i, k := range kinds {
		if k == mem.KindInstr {
			p.Instr(uint64(addrs[i]))
			continue
		}
		p.Access(addrs[i], mem.Kind(k))
	}
}

// cut finalizes the current interval and opens the next one.
func (p *Profiler) cut() {
	p.intervals = append(p.intervals, Interval{
		Index:      len(p.intervals),
		StartEvent: p.start,
		EndEvent:   p.events,
		Instr:      p.instr - p.lastInstr,
		Refs:       p.prof.Refs,
		Sig:        p.prof.Signature(),
	})
	p.prof.Reset()
	p.start = p.events
	p.lastInstr = p.instr
	// A single Instr record can retire more than one interval's worth
	// of instructions; the next threshold is the first multiple beyond
	// the current count, so intervals never come out empty.
	p.next = (p.instr/p.interval + 1) * p.interval
}

// Finish closes the trailing partial interval (if any events arrived
// since the last cut) and returns the interval set. The profiler must
// not be fed after Finish.
func (p *Profiler) Finish() []Interval {
	if p.events > p.start {
		p.cut()
	}
	return p.intervals
}

// Events returns the total number of sink events profiled.
func (p *Profiler) Events() uint64 { return p.events }

// TotalInstr returns the total instructions retired.
func (p *Profiler) TotalInstr() uint64 { return p.instr }

// StackDropped returns the lines the capped profiling stack evicted
// (cold-attribution above the cap is approximate when nonzero).
func (p *Profiler) StackDropped() uint64 { return p.stack.Dropped() }

var _ mem.BatchSink = (*Profiler)(nil)
