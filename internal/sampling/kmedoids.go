package sampling

// Deterministic seeded k-medoids over interval signatures. The
// clustering runs serially with a fixed iteration order and a private
// splitmix64 generator, so the same intervals + k + seed always produce
// the same medoid set — the first link in the byte-identical-estimates
// chain. Distances are L1 over the signature vectors (bounded, scale-
// free fractions, so no normalization pass is needed).

// Clusters is a k-medoids partition of an interval set.
type Clusters struct {
	// Medoid maps cluster -> interval index of its representative.
	Medoid []int
	// Assign maps interval index -> cluster.
	Assign []int
	// Size counts members per cluster. Every cluster returned is
	// non-empty (empty clusters are dropped and the rest renumbered).
	Size []int
}

// K returns the number of (non-empty) clusters.
func (c Clusters) K() int { return len(c.Medoid) }

// splitmix64 advances the generator state and returns the next value —
// the standard finalizer, the repository's seeded-randomness idiom.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// sigDist is the L1 distance between two signature vectors.
func sigDist(a, b []float64) float64 {
	var d float64
	for i := range a {
		if i >= len(b) {
			d += a[i]
			continue
		}
		if a[i] >= b[i] {
			d += a[i] - b[i]
		} else {
			d += b[i] - a[i]
		}
	}
	for i := len(a); i < len(b); i++ {
		d += b[i]
	}
	return d
}

// maxKMedoidsIters bounds the assignment/update loop; signatures are
// low-dimensional and the loop converges in a handful of rounds.
const maxKMedoidsIters = 32

// Cluster partitions the intervals into at most k clusters. The seed
// picks the first medoid; the rest seed by farthest-point spread
// (deterministic, ties to the lowest index), then standard PAM-style
// assignment/update iterations run to convergence.
func Cluster(intervals []Interval, k int, seed uint64) Clusters {
	m := len(intervals)
	if m == 0 {
		return Clusters{}
	}
	if k >= m {
		// Identity clustering: every interval is its own (exactly
		// measured) cluster, so k == M degenerates the whole pipeline to
		// a full-fidelity run with zero-width error bars — even when
		// signatures repeat.
		cl := Clusters{Medoid: make([]int, m), Assign: make([]int, m), Size: make([]int, m)}
		for i := 0; i < m; i++ {
			cl.Medoid[i], cl.Assign[i], cl.Size[i] = i, i, 1
		}
		return cl
	}
	if k < 1 {
		k = 1
	}

	state := seed
	medoids := make([]int, 0, k)
	chosen := make([]bool, m)
	medoids = append(medoids, int(splitmix64(&state)%uint64(m)))
	chosen[medoids[0]] = true

	// Farthest-point seeding: each further medoid is the unchosen
	// interval farthest from its nearest chosen medoid (never a repeat,
	// even when duplicate signatures make every distance zero).
	nearest := make([]float64, m)
	for i := range nearest {
		nearest[i] = sigDist(intervals[i].Sig, intervals[medoids[0]].Sig)
	}
	for len(medoids) < k {
		best, bestD := -1, -1.0
		for i := 0; i < m; i++ {
			if !chosen[i] && nearest[i] > bestD {
				best, bestD = i, nearest[i]
			}
		}
		medoids = append(medoids, best)
		chosen[best] = true
		for i := 0; i < m; i++ {
			if d := sigDist(intervals[i].Sig, intervals[best].Sig); d < nearest[i] {
				nearest[i] = d
			}
		}
	}

	assign := make([]int, m)
	// reassign maps every interval to its nearest medoid, ties to the
	// lower cluster index.
	reassign := func() {
		for i := 0; i < m; i++ {
			bestC, bestD := 0, sigDist(intervals[i].Sig, intervals[medoids[0]].Sig)
			for c := 1; c < len(medoids); c++ {
				if d := sigDist(intervals[i].Sig, intervals[medoids[c]].Sig); d < bestD {
					bestC, bestD = c, d
				}
			}
			assign[i] = bestC
		}
	}
	for iter := 0; iter < maxKMedoidsIters; iter++ {
		reassign()
		// Update: the member minimizing total distance to its cluster,
		// ties to the lowest interval index.
		changed := false
		for c := range medoids {
			bestIdx, bestCost := -1, 0.0
			for i := 0; i < m; i++ {
				if assign[i] != c {
					continue
				}
				var cost float64
				for j := 0; j < m; j++ {
					if assign[j] == c {
						cost += sigDist(intervals[i].Sig, intervals[j].Sig)
					}
				}
				if bestIdx == -1 || cost < bestCost {
					bestIdx, bestCost = i, cost
				}
			}
			if bestIdx != -1 && bestIdx != medoids[c] {
				medoids[c] = bestIdx
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	// One final assignment so the partition always matches the final
	// medoid set, even when the iteration cap cut the loop short.
	reassign()

	// Drop empty clusters (possible with duplicate signatures: the
	// lower-indexed medoid takes every tied member) and renumber.
	size := make([]int, len(medoids))
	for i := 0; i < m; i++ {
		size[assign[i]]++
	}
	remap := make([]int, len(medoids))
	out := Clusters{Assign: make([]int, m)}
	for c := range medoids {
		if size[c] == 0 {
			remap[c] = -1
			continue
		}
		remap[c] = len(out.Medoid)
		out.Medoid = append(out.Medoid, medoids[c])
		out.Size = append(out.Size, size[c])
	}
	for i := 0; i < m; i++ {
		out.Assign[i] = remap[assign[i]]
	}
	return out
}
