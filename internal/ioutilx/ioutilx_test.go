package ioutilx

import (
	"errors"
	"testing"
)

type closerFunc func() error

func (f closerFunc) Close() error { return f() }

var errClose = errors.New("close failed")

// TestCloseKeeping: the close helper surfaces a Close error only when
// nothing failed earlier.
func TestCloseKeeping(t *testing.T) {
	var err error
	CloseKeeping(&err, closerFunc(func() error { return nil }))
	if err != nil {
		t.Fatalf("clean close set error %v", err)
	}
	CloseKeeping(&err, closerFunc(func() error { return errClose }))
	if err != errClose {
		t.Fatalf("close error not kept: %v", err)
	}
	prior := errors.New("prior failure")
	err = prior
	CloseKeeping(&err, closerFunc(func() error { return errClose }))
	if err != prior {
		t.Fatalf("close error displaced the primary error: %v", err)
	}
}
