// Package ioutilx holds the repository's shared write-path close
// idiom. A file opened for writing buffers in the kernel and the
// runtime; the final Close is where a full filesystem or an I/O error
// often first surfaces, so a dropped Close error is a dropped write
// error. CloseKeeping is the deferred form every write path uses (and
// the closecheck analyzer points at): it folds Close's error into the
// function's named return without displacing an earlier failure.
package ioutilx

import "io"

// CloseKeeping closes c and records its error into *err unless an
// earlier error is already there — so a failed flush (e.g. a full
// filesystem surfacing at Close) cannot exit 0. Use it deferred with a
// named return:
//
//	func write(path string) (err error) {
//		f, err := os.Create(path)
//		if err != nil {
//			return err
//		}
//		defer ioutilx.CloseKeeping(&err, f)
//		...
//	}
func CloseKeeping(err *error, c io.Closer) {
	if cerr := c.Close(); cerr != nil && *err == nil {
		*err = cerr
	}
}
