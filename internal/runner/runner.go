// Package runner is the experiment engine: a worker pool that fans
// independent simulation jobs out across the host's cores while keeping
// the results exactly as a serial run would produce them.
//
// Every experiment in this reproduction (the Table 1/2 rows, the
// Figure 3/4/5 panels, the working-set sweep) is a set of *independent*
// trace-driven simulations: each job owns its own Machine, generators
// and RNG state, and no job reads another's output. That independence
// is the whole determinism model — parallel execution changes only the
// wall-clock interleaving, never the numbers — so the engine's contract
// is simply:
//
//   - results[i] is whatever fn(ctx, i) returned, for every i, in input
//     order, regardless of worker count or completion order;
//   - Workers == 1 runs the jobs inline on the calling goroutine, in
//     order — the legacy serial path, byte-identical by construction;
//   - the first error (lowest job index among failures) cancels the
//     remaining jobs and is returned;
//   - OnDone fires once per completed job, serialised, so progress
//     reporting needs no locking of its own.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// Config shapes one Map call.
type Config struct {
	// Workers is the worker-pool size: 0 selects runtime.NumCPU(), 1
	// forces the serial in-caller path, and anything larger bounds the
	// number of jobs in flight. More workers than jobs is clamped.
	Workers int
	// OnDone, when non-nil, is called once per finished job with its
	// index, from at most one goroutine at a time (calls are serialised
	// under an internal mutex). Completion order — and therefore call
	// order — is nondeterministic with Workers > 1.
	OnDone func(index int)
}

// workers resolves the effective pool size for n jobs.
func (c Config) workers(n int) int {
	w := c.Workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Map runs fn(ctx, i) for every i in [0, n) on the configured worker
// pool and returns the results in input order. See the package comment
// for the determinism contract. A nil ctx means context.Background().
func Map[T any](ctx context.Context, n int, cfg Config, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if n <= 0 {
		return nil, nil
	}
	results := make([]T, n)
	if cfg.workers(n) == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			r, err := fn(ctx, i)
			if err != nil {
				return nil, &JobError{Index: i, Err: err}
			}
			results[i] = r
			if cfg.OnDone != nil {
				cfg.OnDone(i)
			}
		}
		return results, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	fails := &failures{firstIdx: -1}
	fail := func(i int, err error) {
		fails.record(i, err)
		cancel()
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < cfg.workers(n); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if ctx.Err() != nil {
					continue // drain: the feeder may already have queued us work
				}
				r, err := fn(ctx, i)
				if err != nil {
					fail(i, err)
					continue
				}
				results[i] = r
				if cfg.OnDone != nil {
					fails.serialize(func() { cfg.OnDone(i) })
				}
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	if idx, err := fails.first(); idx >= 0 {
		return nil, &JobError{Index: idx, Err: err}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// failures is Map's cross-worker bookkeeping: the winning (lowest
// index) job error, plus the mutex that also serialises OnDone
// callbacks — one lock, so a progress callback never interleaves with
// error recording.
type failures struct {
	mu sync.Mutex
	//emlint:guardedby mu
	firstErr error
	//emlint:guardedby mu
	firstIdx int // -1 until a job fails
}

// record notes a failed job, keeping the lowest index so the surfaced
// error does not depend on scheduling.
func (f *failures) record(i int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.firstIdx == -1 || i < f.firstIdx {
		f.firstIdx, f.firstErr = i, err
	}
}

// first returns the lowest failed job index and its error; -1 means
// every job succeeded.
func (f *failures) first() (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.firstIdx, f.firstErr
}

// serialize runs cb under the bookkeeping mutex (the OnDone contract:
// at most one callback at a time).
func (f *failures) serialize(cb func()) {
	f.mu.Lock()
	defer f.mu.Unlock()
	cb()
}

// Reduce is Map followed by an input-order fold: fn runs on the worker
// pool, then fold consumes the results in job order — job 0 first,
// regardless of completion order — so any accumulator (sums, merged
// metric snapshots, concatenated rows) is identical for every worker
// count. The fold runs on the calling goroutine after all jobs finish.
func Reduce[T, A any](ctx context.Context, n int, cfg Config, init A,
	fn func(ctx context.Context, i int) (T, error), fold func(acc A, r T, i int) A) (A, error) {
	results, err := Map(ctx, n, cfg, fn)
	if err != nil {
		var zero A
		return zero, err
	}
	acc := init
	for i, r := range results {
		acc = fold(acc, r, i)
	}
	return acc, nil
}

// Run executes a fixed set of heterogeneous jobs on the pool and waits
// for all of them. It is Map with per-index functions and no results —
// the shape of "run the baseline machine and the migration machine at
// the same time".
func Run(ctx context.Context, cfg Config, jobs ...func(ctx context.Context) error) error {
	_, err := Map(ctx, len(jobs), cfg, func(ctx context.Context, i int) (struct{}, error) {
		return struct{}{}, jobs[i](ctx)
	})
	return err
}

// JobError wraps a job function's error with the index of the job that
// produced it. When several parallel jobs fail, Map reports the one
// with the lowest index, so the surfaced error does not depend on
// scheduling.
type JobError struct {
	Index int
	Err   error
}

// Error implements error.
func (e *JobError) Error() string { return fmt.Sprintf("runner: job %d: %v", e.Index, e.Err) }

// Unwrap exposes the job's own error to errors.Is/As.
func (e *JobError) Unwrap() error { return e.Err }
