package runner

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapOrdering: results come back in input order for every worker
// count, including counts far above the job count.
func TestMapOrdering(t *testing.T) {
	const n = 100
	for _, workers := range []int{0, 1, 2, 3, 16, 200} {
		got, err := Map(context.Background(), n, Config{Workers: workers},
			func(_ context.Context, i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != n {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), n)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: results[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestMapSerialEqualsParallel: the parallel pool and the serial path
// produce identical result slices when jobs are deterministic.
func TestMapSerialEqualsParallel(t *testing.T) {
	fn := func(_ context.Context, i int) (string, error) {
		return fmt.Sprintf("job-%d", i*7%13), nil
	}
	serial, err := Map(context.Background(), 50, Config{Workers: 1}, fn)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Map(context.Background(), 50, Config{Workers: 8}, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("results[%d]: serial %q != parallel %q", i, serial[i], parallel[i])
		}
	}
}

// TestMapError: a failing job cancels the run; the reported index is
// the lowest failing one, wrapped so errors.Is sees the cause.
func TestMapError(t *testing.T) {
	sentinel := errors.New("boom")
	for _, workers := range []int{1, 4} {
		_, err := Map(context.Background(), 20, Config{Workers: workers},
			func(_ context.Context, i int) (int, error) {
				if i == 3 || i == 17 {
					return 0, sentinel
				}
				return i, nil
			})
		if err == nil {
			t.Fatalf("workers=%d: no error", workers)
		}
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: error %v does not wrap sentinel", workers, err)
		}
		var je *JobError
		if !errors.As(err, &je) {
			t.Fatalf("workers=%d: error %v is not a JobError", workers, err)
		}
		// Serial stops at the first failure deterministically; parallel
		// reports the lowest observed failure, which is 3 unless the
		// scheduler never ran job 3 before cancellation — but job 3
		// always runs (cancellation only skips jobs after the failure
		// is recorded, and 3 is the first failure any worker can hit
		// before 17 only... both may run; the reported index must be
		// one of the failing jobs).
		if je.Index != 3 && je.Index != 17 {
			t.Fatalf("workers=%d: failing index %d, want 3 or 17", workers, je.Index)
		}
		if workers == 1 && je.Index != 3 {
			t.Fatalf("serial: failing index %d, want 3", je.Index)
		}
	}
}

// TestMapCancellation: cancelling the context stops the run promptly
// and surfaces ctx.Err.
func TestMapCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	_, err := Map(ctx, 1000, Config{Workers: 2},
		func(ctx context.Context, i int) (int, error) {
			if started.Add(1) == 3 {
				cancel()
			}
			select {
			case <-ctx.Done():
			case <-time.After(time.Millisecond):
			}
			return i, nil
		})
	if err == nil {
		t.Fatal("cancelled run returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v, want context.Canceled", err)
	}
	if n := started.Load(); n > 950 {
		t.Fatalf("cancellation did not stop the feed: %d jobs started", n)
	}
}

// TestMapProgress: OnDone fires exactly once per job, with each index.
func TestMapProgress(t *testing.T) {
	for _, workers := range []int{1, 4} {
		seen := make(map[int]int)
		_, err := Map(context.Background(), 30, Config{
			Workers: workers,
			OnDone:  func(i int) { seen[i]++ }, // serialised by Map
		}, func(_ context.Context, i int) (int, error) { return i, nil })
		if err != nil {
			t.Fatal(err)
		}
		if len(seen) != 30 {
			t.Fatalf("workers=%d: OnDone saw %d distinct jobs, want 30", workers, len(seen))
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: OnDone fired %d times for job %d", workers, c, i)
			}
		}
	}
}

// TestMapEmpty: zero jobs is a no-op.
func TestMapEmpty(t *testing.T) {
	got, err := Map(context.Background(), 0, Config{}, func(_ context.Context, i int) (int, error) {
		t.Fatal("job ran")
		return 0, nil
	})
	if err != nil || got != nil {
		t.Fatalf("got %v, %v; want nil, nil", got, err)
	}
}

// TestRun: heterogeneous jobs all execute; an error propagates.
func TestRun(t *testing.T) {
	var a, b atomic.Bool
	err := Run(context.Background(), Config{Workers: 2},
		func(context.Context) error { a.Store(true); return nil },
		func(context.Context) error { b.Store(true); return nil },
	)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Load() || !b.Load() {
		t.Fatal("not all jobs ran")
	}
	sentinel := errors.New("run fail")
	err = Run(context.Background(), Config{Workers: 2},
		func(context.Context) error { return nil },
		func(context.Context) error { return sentinel },
	)
	if !errors.Is(err, sentinel) {
		t.Fatalf("error %v does not wrap sentinel", err)
	}
}
