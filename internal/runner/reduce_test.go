package runner

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

// TestReduceFoldsInInputOrder: the fold must see results in job order
// for every worker count, so order-sensitive accumulators (string
// concatenation here) come out identical.
func TestReduceFoldsInInputOrder(t *testing.T) {
	const n = 20
	want := ""
	for i := 0; i < n; i++ {
		want += fmt.Sprintf("%d;", i*i)
	}
	for _, workers := range []int{1, 2, 7, n} {
		got, err := Reduce(context.Background(), n, Config{Workers: workers}, "",
			func(_ context.Context, i int) (int, error) { return i * i, nil },
			func(acc string, r, i int) string { return acc + fmt.Sprintf("%d;", r) })
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("workers=%d fold order broke: %q != %q", workers, got, want)
		}
	}
}

// TestReduceFoldIndex: the fold receives each result's job index.
func TestReduceFoldIndex(t *testing.T) {
	sum, err := Reduce(context.Background(), 5, Config{Workers: 3}, 0,
		func(_ context.Context, i int) (int, error) { return 10 * i, nil },
		func(acc, r, i int) int {
			if r != 10*i {
				t.Errorf("fold got result %d at index %d", r, i)
			}
			return acc + r + i
		})
	if err != nil {
		t.Fatal(err)
	}
	if sum != 110 {
		t.Fatalf("sum = %d, want 110", sum)
	}
}

// TestReduceError: a failing job surfaces as a JobError and the fold
// never runs.
func TestReduceError(t *testing.T) {
	boom := errors.New("boom")
	_, err := Reduce(context.Background(), 4, Config{Workers: 2}, 0,
		func(_ context.Context, i int) (int, error) {
			if i == 2 {
				return 0, boom
			}
			return i, nil
		},
		func(acc, r, i int) int {
			t.Error("fold ran despite job failure")
			return acc
		})
	var je *JobError
	if !errors.As(err, &je) || je.Index != 2 || !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}
