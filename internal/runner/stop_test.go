package runner

import (
	"context"
	"testing"
	"time"
)

// waitFlag polls the flag for up to a second.
func waitFlag(t *testing.T, f interface{ Load() bool }) {
	t.Helper()
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if f.Load() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("stop flag never flipped")
}

func TestStopWhenDoneFlipsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	stop, release := StopWhenDone(ctx)
	defer release()
	if stop.Load() {
		t.Fatal("flag set before cancellation")
	}
	cancel()
	waitFlag(t, stop)
}

func TestStopWhenDoneAlreadyExpired(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	stop, release := StopWhenDone(ctx)
	defer release()
	waitFlag(t, stop)
}

// TestStopWhenDoneAnyContext: the flag observes whichever context ends
// first — the shape of "request deadline OR server drain".
func TestStopWhenDoneAnyContext(t *testing.T) {
	reqCtx := context.Background()
	drainCtx, drain := context.WithCancel(context.Background())
	stop, release := StopWhenDone(reqCtx, drainCtx)
	defer release()
	drain()
	waitFlag(t, stop)
}

// TestStopWhenDoneRelease: release returns even when no context ever
// fires, and is safe to call twice.
func TestStopWhenDoneRelease(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stop, release := StopWhenDone(ctx, nil)
	release()
	release()
	if stop.Load() {
		t.Fatal("flag set without cancellation")
	}
}
