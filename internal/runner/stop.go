package runner

import (
	"context"
	"sync"
	"sync/atomic"
)

// StopWhenDone translates context cancellation into the event-loop stop
// protocol the simulator sinks understand: the returned flag flips to
// true as soon as any of the given contexts is done, and a sink polling
// it per event aborts the pass at the next event boundary.
//
// Workload generators cannot return early and machine passes run for
// millions of events between function returns, so a context deadline on
// its own would only be observed at job granularity. This helper is the
// bridge: the service layer derives a per-request context, hands the
// flag to the pass's sink, and the job observes the deadline at event
// granularity instead.
//
// release must be called when the pass ends (typically deferred); it
// unblocks the watcher goroutines and waits for them to exit, so no
// goroutine outlives the job that spawned it. Nil contexts are ignored.
func StopWhenDone(ctxs ...context.Context) (stop *atomic.Bool, release func()) {
	flag := new(atomic.Bool)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for _, ctx := range ctxs {
		if ctx == nil {
			continue
		}
		wg.Add(1)
		go func(ctx context.Context) {
			defer wg.Done()
			select {
			case <-ctx.Done():
				flag.Store(true)
			case <-done:
			}
		}(ctx)
	}
	var once sync.Once
	return flag, func() {
		once.Do(func() { close(done) })
		wg.Wait()
	}
}
