package health

import (
	"time"

	"repro/internal/trace"
)

// Backoff computes retry delays with exponential growth and full
// jitter: attempt n draws uniformly from [0, min(Cap, Base·2ⁿ)]. Full
// jitter (rather than equal or decorrelated jitter) is the policy that
// best de-synchronises a thundering herd of clients retrying against
// one recovering emsimd — every retry lands at an independent uniform
// point of the window instead of the same exponential instants.
//
// Retrying a simulation request at all is safe because requests are
// idempotent by content address: a /run result is fully determined by
// its canonical spec, the service's cache and store are keyed by that
// spec's SHA-256, and first-result-wins means a duplicate computation
// can only ever produce the byte-identical body the first one did. A
// retried request can cost duplicate work, never a divergent result.
type Backoff struct {
	// Base is attempt 0's maximum delay (default 200ms).
	Base time.Duration
	// Cap bounds the delay window (default 5s).
	Cap time.Duration

	rng *trace.RNG
}

// NewBackoff builds a jittered backoff. The jitter source is seeded
// from the wall clock: unlike every simulation path, retry scheduling
// *should* differ between two clients started at the same command
// line — identical seeds would re-synchronise the herd the jitter
// exists to spread out.
func NewBackoff(base, cap time.Duration) *Backoff {
	//emlint:wallclock client retry jitter must differ across processes; never feeds a simulation result
	seed := uint64(time.Now().UnixNano())
	return &Backoff{Base: base, Cap: cap, rng: trace.NewRNG(seed)}
}

// NewSeededBackoff is NewBackoff with a fixed seed, for deterministic
// tests.
func NewSeededBackoff(base, cap time.Duration, seed uint64) *Backoff {
	return &Backoff{Base: base, Cap: cap, rng: trace.NewRNG(seed)}
}

// Delay returns the full-jitter delay for the given zero-based
// attempt: uniform in [0, window] where window = min(Cap, Base·2ⁿ).
func (b *Backoff) Delay(attempt int) time.Duration {
	base := b.Base
	if base <= 0 {
		base = 200 * time.Millisecond
	}
	cap := b.Cap
	if cap <= 0 {
		cap = 5 * time.Second
	}
	window := base
	for i := 0; i < attempt && window < cap; i++ {
		window *= 2
	}
	if window > cap {
		window = cap
	}
	return time.Duration(b.rng.Uint64n(uint64(window) + 1))
}
