// Package health is the service's probe layer: named liveness and
// readiness checks assembled into Kubernetes-style /livez and /readyz
// endpoints, plus the client-side retry backoff the probes pair with.
//
// The split follows the usual contract. Liveness answers "is this
// process worth keeping alive" — it only fails when the process is
// wedged beyond recovery (worker pool dead), so an orchestrator
// restarts it. Readiness answers "should this process receive traffic
// right now" — it also fails during transient states (crash recovery
// still replaying spooled checkpoints, result store not writable,
// drain in progress), so load is routed elsewhere without killing the
// process.
package health

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
)

// Probe is one named check: nil = healthy, an error = unhealthy with a
// reason. Checks must be safe for concurrent use and fast (they run on
// every probe request).
type Probe struct {
	Name  string
	Check func() error
}

// Checker runs a fixed, ordered set of probes and serves the result
// over HTTP. Register all probes before serving; registration order is
// response order, so probe output is deterministic.
type Checker struct {
	mu sync.Mutex
	//emlint:guardedby mu
	probes []Probe
}

// NewChecker returns an empty Checker.
func NewChecker() *Checker { return &Checker{} }

// Register appends a named probe.
func (c *Checker) Register(name string, check func() error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.probes = append(c.probes, Probe{Name: name, Check: check})
}

// CheckResult is one probe's outcome in a Report.
type CheckResult struct {
	Name string `json:"name"`
	// Status is "ok" or the probe's error text.
	Status string `json:"status"`
}

// Report is the outcome of running every probe.
type Report struct {
	// OK is true when every probe passed.
	OK     bool          `json:"-"`
	Checks []CheckResult `json:"checks"`
}

// Run executes every probe in registration order.
func (c *Checker) Run() Report {
	c.mu.Lock()
	probes := c.probes
	c.mu.Unlock()
	rep := Report{OK: true}
	for _, p := range probes {
		res := CheckResult{Name: p.Name, Status: "ok"}
		if err := p.Check(); err != nil {
			res.Status = err.Error()
			rep.OK = false
		}
		rep.Checks = append(rep.Checks, res)
	}
	return rep
}

// Handler serves the checker as a probe endpoint: 200 with
// {"status":"ok",...} when every probe passes, 503 with
// {"status":"unavailable",...} otherwise. The body lists each probe's
// outcome in registration order so a failing probe is identifiable
// from the response alone.
func (c *Checker) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		rep := c.Run()
		status := "ok"
		code := http.StatusOK
		if !rep.OK {
			status = "unavailable"
			code = http.StatusServiceUnavailable
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		if r.Method == http.MethodHead {
			return
		}
		resp := struct {
			Status string        `json:"status"`
			Checks []CheckResult `json:"checks,omitempty"`
		}{Status: status, Checks: rep.Checks}
		if err := json.NewEncoder(w).Encode(resp); err != nil {
			// A broken probe connection is not actionable; the status
			// code already went out.
			_ = err
		}
	})
}

// Failf is a convenience for probe implementations: a formatted
// unhealthy result.
func Failf(format string, args ...any) error { return fmt.Errorf(format, args...) }
