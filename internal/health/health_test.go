package health

import (
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestCheckerAllHealthy: every probe passing yields OK and a 200 with
// per-probe status in registration order.
func TestCheckerAllHealthy(t *testing.T) {
	c := NewChecker()
	c.Register("store", func() error { return nil })
	c.Register("recovery", func() error { return nil })
	rep := c.Run()
	if !rep.OK || len(rep.Checks) != 2 {
		t.Fatalf("report: %+v", rep)
	}
	if rep.Checks[0].Name != "store" || rep.Checks[1].Name != "recovery" {
		t.Fatalf("probe order not registration order: %+v", rep.Checks)
	}

	rec := httptest.NewRecorder()
	c.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != 200 {
		t.Fatalf("healthy checker served %d", rec.Code)
	}
	var resp struct {
		Status string        `json:"status"`
		Checks []CheckResult `json:"checks"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("body not JSON: %v\n%s", err, rec.Body.String())
	}
	if resp.Status != "ok" || resp.Checks[1].Status != "ok" {
		t.Fatalf("response: %+v", resp)
	}
}

// TestCheckerFailingProbe: one failing probe flips the endpoint to 503
// and names itself with its error text.
func TestCheckerFailingProbe(t *testing.T) {
	c := NewChecker()
	c.Register("store", func() error { return nil })
	c.Register("recovery", func() error { return errors.New("3 checkpoints still replaying") })
	rec := httptest.NewRecorder()
	c.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != 503 {
		t.Fatalf("failing checker served %d", rec.Code)
	}
	body := rec.Body.String()
	if !strings.Contains(body, `"unavailable"`) || !strings.Contains(body, "3 checkpoints still replaying") {
		t.Fatalf("body does not name the failing probe: %s", body)
	}
	// The healthy probe still reports ok alongside the failure.
	if !strings.Contains(body, `"status":"ok"`) {
		t.Fatalf("healthy probe missing from body: %s", body)
	}
}

// TestCheckerMethods: HEAD is allowed (status only), other methods are
// 405.
func TestCheckerMethods(t *testing.T) {
	c := NewChecker()
	rec := httptest.NewRecorder()
	c.Handler().ServeHTTP(rec, httptest.NewRequest("HEAD", "/livez", nil))
	if rec.Code != 200 || rec.Body.Len() != 0 {
		t.Fatalf("HEAD: %d, %d body bytes", rec.Code, rec.Body.Len())
	}
	rec = httptest.NewRecorder()
	c.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/livez", nil))
	if rec.Code != 405 {
		t.Fatalf("POST: %d", rec.Code)
	}
}

// TestCheckerDynamicProbe: a probe reflects current state, not the
// state at registration.
func TestCheckerDynamicProbe(t *testing.T) {
	ready := false
	c := NewChecker()
	c.Register("gate", func() error {
		if !ready {
			return Failf("not ready")
		}
		return nil
	})
	if rep := c.Run(); rep.OK {
		t.Fatal("gate passed while closed")
	}
	ready = true
	if rep := c.Run(); !rep.OK {
		t.Fatal("gate failed after opening")
	}
}

// TestBackoffWindows: delays stay inside the full-jitter window
// [0, min(cap, base·2ⁿ)] and the windows grow until the cap.
func TestBackoffWindows(t *testing.T) {
	base, cap := 100*time.Millisecond, 800*time.Millisecond
	b := NewSeededBackoff(base, cap, 1)
	for attempt := 0; attempt < 10; attempt++ {
		window := base << attempt
		if window > cap || window <= 0 {
			window = cap
		}
		for i := 0; i < 200; i++ {
			d := b.Delay(attempt)
			if d < 0 || d > window {
				t.Fatalf("attempt %d: delay %v outside [0, %v]", attempt, d, window)
			}
		}
	}
}

// TestBackoffJitterSpreads: two clients with different seeds draw
// different delay sequences — the de-synchronisation the jitter is for.
func TestBackoffJitterSpreads(t *testing.T) {
	a := NewSeededBackoff(time.Second, time.Minute, 1)
	b := NewSeededBackoff(time.Second, time.Minute, 2)
	same := 0
	for i := 0; i < 32; i++ {
		if a.Delay(i%8) == b.Delay(i%8) {
			same++
		}
	}
	if same > 4 {
		t.Fatalf("%d/32 identical delays across different seeds", same)
	}
}

// TestBackoffDefaults: zero-valued Base/Cap fall back to usable
// defaults instead of a zero window.
func TestBackoffDefaults(t *testing.T) {
	b := NewSeededBackoff(0, 0, 7)
	saw := false
	for i := 0; i < 100; i++ {
		if b.Delay(6) > 0 {
			saw = true
		}
		if d := b.Delay(6); d > 5*time.Second {
			t.Fatalf("default cap exceeded: %v", d)
		}
	}
	if !saw {
		t.Fatal("defaulted backoff never produced a positive delay")
	}
}

// TestNewBackoffSeedsFromClock: the production constructor produces a
// working (non-panicking, in-window) source.
func TestNewBackoffSeedsFromClock(t *testing.T) {
	b := NewBackoff(10*time.Millisecond, 100*time.Millisecond)
	for i := 0; i < 50; i++ {
		if d := b.Delay(i); d < 0 || d > 100*time.Millisecond {
			t.Fatalf("delay %v out of window", d)
		}
	}
}
