// Package sim provides the simulated execution environment workloads run
// in: a bump-allocated 64-bit address space (objects get stable simulated
// addresses while their values live in ordinary Go memory) and a CPU
// front-end that converts executed-instruction counts into instruction-
// fetch line references and data operations into load/store references.
//
// This replaces the paper's SimpleScalar/PISA functional simulator: the
// paper's experiments consume only the memory reference stream, so a
// faithful address trace — produced by real algorithms touching
// simulated addresses — preserves everything the evaluation measures.
package sim

import (
	"fmt"

	"repro/internal/mem"
)

// Region names a contiguous arena of the simulated address space.
type Region struct {
	Name  string
	Base  mem.Addr
	Limit mem.Addr // first byte beyond the region
	next  mem.Addr
}

// Space is a simulated 64-bit address space with named bump-allocated
// regions. The conventional layout places code low, then globals, heap,
// and stack in distinct gigabyte-aligned arenas, so traces from distinct
// structures never alias.
type Space struct {
	regions  []*Region
	nextBase mem.Addr
}

// NewSpace returns an empty address space. Region bases start at 4GB and
// are 4GB-aligned.
func NewSpace() *Space {
	return &Space{nextBase: 4 << 30}
}

// AddRegion creates a named region of the given byte capacity.
func (s *Space) AddRegion(name string, capacity uint64) *Region {
	r := &Region{
		Name:  name,
		Base:  s.nextBase,
		Limit: s.nextBase + mem.Addr(capacity),
	}
	r.next = r.Base
	s.regions = append(s.regions, r)
	// advance, keeping 4GB alignment
	span := (mem.Addr(capacity) + (4<<30 - 1)) &^ (4<<30 - 1)
	s.nextBase += span
	return r
}

// Alloc reserves size bytes with the given alignment (power of two) and
// returns the simulated address. It panics when the region overflows —
// size the region for the workload.
func (r *Region) Alloc(size, align uint64) mem.Addr {
	if align == 0 {
		align = 8
	}
	if align&(align-1) != 0 {
		//emlint:allowpanic alignments are compile-time workload constants
		panic("sim: alignment must be a power of two")
	}
	a := (uint64(r.next) + align - 1) &^ (align - 1)
	end := a + size
	if mem.Addr(end) > r.Limit {
		//emlint:allowpanic documented contract: regions are sized for the workload; overflow is a workload bug
		panic(fmt.Sprintf("sim: region %q exhausted (%d bytes)", r.Name, r.Limit-r.Base))
	}
	r.next = mem.Addr(end)
	return mem.Addr(a)
}

// Used returns the number of bytes allocated so far.
func (r *Region) Used() uint64 { return uint64(r.next - r.Base) }

// Func describes a simulated code object: a function (or basic-block
// cluster) occupying Size bytes starting at Entry. The CPU walks its
// lines as instructions execute; pos persists across calls so repeated
// short calls cover the whole body over time (modelling the different
// control paths successive invocations take), rather than re-executing
// only the entry line.
type Func struct {
	Name  string
	Entry mem.Addr
	Size  uint64
	pos   uint64 // resume offset, maintained by CPU
}

// Code is a convenience region for allocating Funcs.
type Code struct {
	region *Region
}

// NewCode creates a code arena inside the space.
func (s *Space) NewCode(capacity uint64) *Code {
	return &Code{region: s.AddRegion("code", capacity)}
}

// Func allocates a function of the given byte size (≈ 4 bytes per
// instruction), line-aligned so small functions do not share lines.
func (c *Code) Func(name string, size uint64) *Func {
	if size == 0 {
		size = mem.DefaultLineSize
	}
	return &Func{Name: name, Entry: c.region.Alloc(size, mem.DefaultLineSize), Size: size}
}

// Lines returns how many cache lines the function spans (64-byte lines).
func (f *Func) Lines() uint64 {
	return (size64(f) + mem.DefaultLineSize - 1) / mem.DefaultLineSize
}

func size64(f *Func) uint64 { return f.Size }
