package sim

import "repro/internal/mem"

// InstrBytes is the assumed instruction size (a RISC ISA like the
// paper's PISA): 4 bytes, i.e. 16 instructions per 64-byte code line.
const InstrBytes = 4

// CPU is the workload-facing execution front-end. Workloads call Exec to
// account instruction execution inside the current function (emitting
// I-fetch line references as line boundaries are crossed, wrapping at
// the function end like a loop body), and Load/Store to emit data
// references. All references flow into the Sink.
type CPU struct {
	Sink mem.Sink

	// Instrs counts instructions executed so far (the workload budget).
	Instrs uint64

	lineShift uint
	fn        *Func
	off       uint64 // byte offset of the next instruction within fn
	curLine   mem.Line
	haveLine  bool
}

// NewCPU builds a CPU delivering references to sink (64-byte lines).
func NewCPU(sink mem.Sink) *CPU {
	return &CPU{Sink: sink, lineShift: mem.DefaultLineShift}
}

// Enter switches execution to function f. Passing the current function
// is a no-op. Each function resumes at the offset it last reached, so a
// sequence of short calls sweeps its whole body over time; the line at
// the resume point is fetched on the next Exec.
func (c *CPU) Enter(f *Func) {
	if f == c.fn {
		return
	}
	if c.fn != nil {
		c.fn.pos = c.off
	}
	c.fn = f
	c.off = 0
	if f != nil {
		c.off = f.pos
	}
	c.haveLine = false
}

// Exec executes n instructions inside the current function, walking its
// code lines cyclically (a loop body). Each distinct line entered emits
// one I-fetch reference.
func (c *CPU) Exec(n uint64) {
	if n == 0 {
		return
	}
	c.Instrs += n
	c.Sink.Instr(n)
	f := c.fn
	if f == nil {
		return // data-only workload: no code trace requested
	}
	for n > 0 {
		line := mem.LineOf(f.Entry+mem.Addr(c.off), c.lineShift)
		if !c.haveLine || line != c.curLine {
			c.Sink.Access(mem.AddrOf(line, c.lineShift), mem.IFetch)
			c.curLine = line
			c.haveLine = true
		}
		// instructions remaining on this line
		lineEnd := (uint64(f.Entry)+c.off)>>c.lineShift<<c.lineShift + (1 << c.lineShift)
		onLine := (lineEnd - (uint64(f.Entry) + c.off)) / InstrBytes
		if onLine > n {
			onLine = n
		}
		if onLine == 0 {
			onLine = 1
		}
		c.off += onLine * InstrBytes
		if c.off >= f.Size {
			c.off = 0
			c.haveLine = false
		}
		n -= onLine
	}
}

// Call executes n instructions in function f and returns to the previous
// function (modelling a call): Enter(f), Exec(n), Enter(previous).
func (c *CPU) Call(f *Func, n uint64) {
	prev := c.fn
	c.Enter(f)
	c.Exec(n)
	if prev != nil {
		c.Enter(prev)
	}
}

// Load emits a data load of the line containing addr.
func (c *CPU) Load(addr mem.Addr) {
	c.Sink.Access(addr, mem.Load)
}

// LoadPtr emits a pointer-dereference load (a linked-data-structure
// traversal step): caches treat it as a Load, but the migration
// controller can be configured to trigger only on this class (§6).
func (c *CPU) LoadPtr(addr mem.Addr) {
	c.Sink.Access(addr, mem.PtrLoad)
}

// Store emits a data store of the line containing addr.
func (c *CPU) Store(addr mem.Addr) {
	c.Sink.Access(addr, mem.Store)
}

// LoadRange touches every line of [addr, addr+size) with loads.
func (c *CPU) LoadRange(addr mem.Addr, size uint64) {
	c.rangeOp(addr, size, mem.Load)
}

// StoreRange touches every line of [addr, addr+size) with stores.
func (c *CPU) StoreRange(addr mem.Addr, size uint64) {
	c.rangeOp(addr, size, mem.Store)
}

func (c *CPU) rangeOp(addr mem.Addr, size uint64, kind mem.Kind) {
	if size == 0 {
		return
	}
	first := mem.LineOf(addr, c.lineShift)
	last := mem.LineOf(addr+mem.Addr(size-1), c.lineShift)
	for l := first; l <= last; l++ {
		c.Sink.Access(mem.AddrOf(l, c.lineShift), kind)
	}
}
