package sim

import (
	"testing"

	"repro/internal/mem"
)

// TestSpaceRegionsDisjoint: regions never overlap and allocations honour
// alignment and bounds.
func TestSpaceRegionsDisjoint(t *testing.T) {
	sp := NewSpace()
	a := sp.AddRegion("a", 1<<20)
	b := sp.AddRegion("b", 1<<20)
	if a.Limit > b.Base {
		t.Fatalf("regions overlap: a=[%d,%d) b=[%d,%d)", a.Base, a.Limit, b.Base, b.Limit)
	}
	p1 := a.Alloc(100, 64)
	p2 := a.Alloc(1, 64)
	if p1%64 != 0 || p2%64 != 0 {
		t.Fatal("alignment violated")
	}
	if p2 < p1+100 {
		t.Fatal("allocations overlap")
	}
	if a.Used() == 0 {
		t.Fatal("Used not tracking")
	}
}

// TestRegionExhaustionPanics documents the overflow contract.
func TestRegionExhaustionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on region overflow")
		}
	}()
	sp := NewSpace()
	r := sp.AddRegion("tiny", 128)
	r.Alloc(100, 8)
	r.Alloc(100, 8)
}

// TestBadAlignmentPanics: non-power-of-two alignment is rejected.
func TestBadAlignmentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on bad alignment")
		}
	}()
	sp := NewSpace()
	sp.AddRegion("r", 1<<20).Alloc(8, 3)
}

// recorder captures the access stream for CPU tests.
type recorder struct {
	accesses []mem.Access
	instrs   uint64
}

func (r *recorder) Access(a mem.Addr, k mem.Kind) {
	r.accesses = append(r.accesses, mem.Access{Addr: a, Kind: k})
}
func (r *recorder) Instr(n uint64) { r.instrs += n }

// TestCPUExecWalksCodeLines: executing instructions emits one I-fetch
// per code line entered and wraps at the function end.
func TestCPUExecWalksCodeLines(t *testing.T) {
	sp := NewSpace()
	code := sp.NewCode(1 << 16)
	f := code.Func("loop", 128) // 2 lines, 32 instructions
	rec := &recorder{}
	cpu := NewCPU(rec)
	cpu.Enter(f)
	cpu.Exec(32) // exactly one pass: 2 lines
	var fetches []mem.Addr
	for _, a := range rec.accesses {
		if a.Kind != mem.IFetch {
			t.Fatalf("unexpected kind %v", a.Kind)
		}
		fetches = append(fetches, a.Addr)
	}
	if len(fetches) != 2 || fetches[0] != f.Entry || fetches[1] != f.Entry+64 {
		t.Fatalf("fetch sequence %v, want [%d %d]", fetches, f.Entry, f.Entry+64)
	}
	if rec.instrs != 32 || cpu.Instrs != 32 {
		t.Fatalf("instr accounting: sink=%d cpu=%d", rec.instrs, cpu.Instrs)
	}
	// Another 32 instructions wrap around to the entry line again.
	cpu.Exec(32)
	if n := len(rec.accesses); n != 4 {
		t.Fatalf("after wrap: %d fetches, want 4", n)
	}
	if rec.accesses[2].Addr != f.Entry {
		t.Fatal("wrap did not return to entry line")
	}
}

// TestCPUExecTinyBursts: many 1-instruction Execs on one line emit a
// single I-fetch for that line (no duplicate fetch while staying on it).
func TestCPUExecTinyBursts(t *testing.T) {
	sp := NewSpace()
	f := sp.NewCode(1<<16).Func("f", 64) // one line, 16 instructions
	rec := &recorder{}
	cpu := NewCPU(rec)
	cpu.Enter(f)
	for i := 0; i < 16; i++ {
		cpu.Exec(1)
	}
	if len(rec.accesses) != 1 {
		t.Fatalf("%d fetches for 16 sequential instructions on one line", len(rec.accesses))
	}
}

// TestCPUCall: Call executes in the callee and returns to the caller's
// position.
func TestCPUCall(t *testing.T) {
	sp := NewSpace()
	c := sp.NewCode(1 << 16)
	caller := c.Func("caller", 64)
	callee := c.Func("callee", 64)
	rec := &recorder{}
	cpu := NewCPU(rec)
	cpu.Enter(caller)
	cpu.Exec(4)
	cpu.Call(callee, 4)
	cpu.Exec(4)
	want := []mem.Addr{caller.Entry, callee.Entry, caller.Entry}
	if len(rec.accesses) != 3 {
		t.Fatalf("fetches: %v", rec.accesses)
	}
	for i, a := range rec.accesses {
		if a.Addr != want[i] {
			t.Fatalf("fetch %d at %d, want %d", i, a.Addr, want[i])
		}
	}
}

// TestCPULoadStoreRange: range ops touch every covered line exactly once.
func TestCPULoadStoreRange(t *testing.T) {
	rec := &recorder{}
	cpu := NewCPU(rec)
	cpu.LoadRange(60, 10) // crosses the 64-byte boundary: lines 0 and 1
	if len(rec.accesses) != 2 {
		t.Fatalf("LoadRange(60,10): %d accesses, want 2", len(rec.accesses))
	}
	rec.accesses = nil
	cpu.StoreRange(0, 0) // empty range: nothing
	if len(rec.accesses) != 0 {
		t.Fatal("empty StoreRange emitted accesses")
	}
	cpu.Store(128)
	if rec.accesses[0].Kind != mem.Store {
		t.Fatal("Store kind")
	}
}

// TestFuncLineAlignment: functions are line-aligned so footprints are
// honest.
func TestFuncLineAlignment(t *testing.T) {
	sp := NewSpace()
	c := sp.NewCode(1 << 16)
	f1 := c.Func("a", 10)
	f2 := c.Func("b", 10)
	if f1.Entry%64 != 0 || f2.Entry%64 != 0 {
		t.Fatal("functions not line-aligned")
	}
	if mem.LineOf(f1.Entry, 6) == mem.LineOf(f2.Entry, 6) {
		t.Fatal("two functions share a line")
	}
	if f1.Lines() != 1 {
		t.Fatalf("Lines() = %d", f1.Lines())
	}
}

// TestCPUNoFunc: Exec with no current function accounts instructions but
// emits no fetches (data-only workloads).
func TestCPUNoFunc(t *testing.T) {
	rec := &recorder{}
	cpu := NewCPU(rec)
	cpu.Exec(100)
	if rec.instrs != 100 || len(rec.accesses) != 0 {
		t.Fatalf("instrs=%d accesses=%d", rec.instrs, len(rec.accesses))
	}
}
