package machine

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/ioutilx"
	"repro/internal/migration"
)

// Checkpoint file format ("EMCKPT1"): an 8-byte magic, a uvarint payload
// length, a gob-encoded Checkpoint, and a little-endian CRC32 (IEEE) of
// the payload. The CRC makes a half-written or bit-rotted checkpoint a
// detected error instead of a silently wrong resume; SaveCheckpoint
// additionally writes through a temp file + rename so an interrupted
// save never clobbers the previous good checkpoint.

const checkpointMagic = "EMCKPT1\n"

// NamedSnapshot pairs a machine snapshot with the role it plays in the
// run (emsim checkpoints both the "normal" baseline and the "migration"
// machine, which advance in lockstep over one input pass).
type NamedSnapshot struct {
	Name string
	Snap Snapshot
}

// Checkpoint is everything needed to resume an interrupted simulation:
// the input identity (workload or trace file, instruction budget, core
// count), how many input events the machines have consumed, and the
// machine snapshots themselves. Resume rebuilds the machines from the
// same configuration, restores the snapshots, and re-drives the
// deterministic input with the first Events events discarded.
type Checkpoint struct {
	// Workload is the workload name ("" when driven from a trace).
	Workload string
	// Replay is the trace path driving the run ("" when synthetic).
	Replay string
	// Instr is the instruction budget of the original run.
	Instr uint64
	// Cores is the migration machine's core count.
	Cores int
	// Events is the number of sink events (Access + Instr calls) the
	// machines had consumed when the snapshot was taken.
	Events uint64

	Machines []NamedSnapshot

	// ext carries scenario state beyond the original format: the policy
	// and topology names plus non-Michaud policy states. It is
	// unexported so gob skips it in the main Checkpoint value — the
	// extension is serialised as an optional second gob value after the
	// Checkpoint (still inside the CRC-covered payload), which keeps
	// default-configuration checkpoint files byte-identical to the
	// pre-policy format and lets old readers that stop after the first
	// value ignore it.
	ext *CheckpointExt
}

// CheckpointExt is the EMCKPT1 extension section: everything a
// non-default scenario needs to resume that the original Checkpoint
// shape cannot carry without changing its gob descriptor.
type CheckpointExt struct {
	// Policy and Topology name the run's configuration ("" means the
	// Michaud default / uniform chip).
	Policy   string
	Topology string
	// PolicyStates holds the per-machine policy state for machines whose
	// policy is not the Michaud controller (whose state rides
	// Snapshot.Controller). Keyed by NamedSnapshot name.
	PolicyStates []NamedPolicyState
}

// NamedPolicyState pairs a policy state with the machine it belongs to.
type NamedPolicyState struct {
	Name  string
	State migration.PolicyState
}

// State returns the policy state recorded for machine name, or an
// error.
func (e *CheckpointExt) State(name string) (migration.PolicyState, error) {
	for _, ps := range e.PolicyStates {
		if ps.Name == name {
			return ps.State, nil
		}
	}
	return migration.PolicyState{}, fmt.Errorf("checkpoint: no policy state for machine %q", name)
}

// Ext returns the extension section, nil for checkpoints written by the
// original format or default-configuration runs.
func (c *Checkpoint) Ext() *CheckpointExt { return c.ext }

// SetExt attaches an extension section (nil detaches it, restoring the
// original on-disk format).
func (c *Checkpoint) SetExt(e *CheckpointExt) { c.ext = e }

// Machine returns the named snapshot, or an error.
func (c *Checkpoint) Machine(name string) (*Snapshot, error) {
	for i := range c.Machines {
		if c.Machines[i].Name == name {
			return &c.Machines[i].Snap, nil
		}
	}
	return nil, fmt.Errorf("checkpoint: no machine named %q", name)
}

// WriteCheckpoint serialises ck to w.
func WriteCheckpoint(w io.Writer, ck *Checkpoint) error {
	var payload bytes.Buffer
	enc := gob.NewEncoder(&payload)
	if err := enc.Encode(ck); err != nil {
		return fmt.Errorf("checkpoint: encode: %w", err)
	}
	if ck.ext != nil {
		if err := enc.Encode(ck.ext); err != nil {
			return fmt.Errorf("checkpoint: encode extension: %w", err)
		}
	}
	bw := bufio.NewWriter(w)
	bw.WriteString(checkpointMagic)
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(payload.Len()))
	bw.Write(tmp[:n])
	bw.Write(payload.Bytes())
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload.Bytes()))
	bw.Write(crc[:])
	return bw.Flush()
}

// ReadCheckpoint deserialises a checkpoint, verifying the magic, length
// and CRC before decoding.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(checkpointMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("checkpoint: reading magic: %w", err)
	}
	if string(magic) != checkpointMagic {
		return nil, fmt.Errorf("checkpoint: bad magic %q", magic)
	}
	size, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: reading payload length: %w", err)
	}
	const maxPayload = 1 << 32
	if size > maxPayload {
		return nil, fmt.Errorf("checkpoint: payload length %d exceeds %d", size, uint64(maxPayload))
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, fmt.Errorf("checkpoint: truncated payload: %w", err)
	}
	var crcBytes [4]byte
	if _, err := io.ReadFull(br, crcBytes[:]); err != nil {
		return nil, fmt.Errorf("checkpoint: truncated CRC: %w", err)
	}
	want := binary.LittleEndian.Uint32(crcBytes[:])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("checkpoint: CRC mismatch: computed %08x, stored %08x", got, want)
	}
	var ck Checkpoint
	dec := gob.NewDecoder(bytes.NewReader(payload))
	if err := dec.Decode(&ck); err != nil {
		return nil, fmt.Errorf("checkpoint: decode: %w", err)
	}
	// The extension section is optional: original-format checkpoints end
	// after the Checkpoint value and decode cleanly with a nil ext.
	var ext CheckpointExt
	switch err := dec.Decode(&ext); err {
	case nil:
		ck.ext = &ext
	case io.EOF:
	default:
		return nil, fmt.Errorf("checkpoint: decode extension: %w", err)
	}
	return &ck, nil
}

// SaveCheckpoint atomically writes ck to path (temp file + rename), so a
// crash mid-save leaves any previous checkpoint intact.
func SaveCheckpoint(path string, ck *Checkpoint) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := f.Name()
	if err := writeAndClose(f, ck); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// writeAndClose writes ck to f, syncs and closes it, keeping the first
// error. The close happens here rather than deferred in SaveCheckpoint
// because the rename that publishes the checkpoint must only run after
// a clean close.
func writeAndClose(f *os.File, ck *Checkpoint) (err error) {
	defer ioutilx.CloseKeeping(&err, f)
	if err := WriteCheckpoint(f, ck); err != nil {
		return err
	}
	return f.Sync()
}

// LoadCheckpoint reads a checkpoint from path.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCheckpoint(f)
}
