package machine

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/mem"
	"repro/internal/trace"
	"repro/internal/workloads/suite"
)

// recordedEvent is one sink event captured for exact replay control.
type recordedEvent struct {
	addr    mem.Addr
	kind    mem.Kind
	instr   uint64
	isInstr bool
}

type recordingSink struct{ evs []recordedEvent }

func (r *recordingSink) Access(a mem.Addr, k mem.Kind) {
	r.evs = append(r.evs, recordedEvent{addr: a, kind: k})
}
func (r *recordingSink) Instr(n uint64) {
	r.evs = append(r.evs, recordedEvent{instr: n, isInstr: true})
}

func deliver(t *testing.T, evs []recordedEvent, sinks ...mem.Sink) {
	t.Helper()
	for _, e := range evs {
		for _, s := range sinks {
			if e.isInstr {
				s.Instr(e.instr)
			} else {
				s.Access(e.addr, e.kind)
			}
		}
	}
}

// captureWorkload records a workload's event stream once, so the
// interrupted and uninterrupted runs see byte-identical input.
func captureWorkload(t *testing.T, name string, budget uint64) []recordedEvent {
	t.Helper()
	w, err := suite.Registry().New(name)
	if err != nil {
		t.Fatal(err)
	}
	var rec recordingSink
	w.Run(&rec, budget)
	return rec.evs
}

// captureSynthetic records a circular sweep (the paper's canonical
// splittable behaviour).
func captureSynthetic(lines, refs uint64) []recordedEvent {
	var rec recordingSink
	trace.Drive(trace.NewCircular(lines), &rec, refs, 6, 3)
	return rec.evs
}

// TestCheckpointRoundTrip: snapshotting both machines mid-run, pushing
// the snapshot through the serialised checkpoint format, restoring into
// FRESH machines and finishing the run must give final stats
// bit-identical to the uninterrupted run — for a SPEC analogue, an
// Olden analogue and a synthetic workload.
func TestCheckpointRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		evs  func(t *testing.T) []recordedEvent
	}{
		{"181.mcf", func(t *testing.T) []recordedEvent { return captureWorkload(t, "181.mcf", 400_000) }},
		{"em3d", func(t *testing.T) []recordedEvent { return captureWorkload(t, "em3d", 400_000) }},
		{"circular", func(t *testing.T) []recordedEvent { return captureSynthetic(24<<10, 150_000) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			evs := tc.evs(t)
			if len(evs) < 1000 {
				t.Fatalf("workload produced only %d events", len(evs))
			}

			// Uninterrupted reference run.
			refNormal := MustNew(NormalConfig())
			refMig := MustNew(MigrationConfig())
			deliver(t, evs, refNormal, refMig)

			// Interrupted run: stop at ~40%, checkpoint, restore, finish.
			cut := len(evs) * 2 / 5
			aNormal := MustNew(NormalConfig())
			aMig := MustNew(MigrationConfig())
			deliver(t, evs[:cut], aNormal, aMig)

			ns, err := aNormal.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			ms, err := aMig.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			ck := &Checkpoint{
				Workload: tc.name,
				Cores:    4,
				Events:   uint64(cut),
				Machines: []NamedSnapshot{{Name: "normal", Snap: ns}, {Name: "migration", Snap: ms}},
			}
			var buf bytes.Buffer
			if err := WriteCheckpoint(&buf, ck); err != nil {
				t.Fatal(err)
			}
			loaded, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if loaded.Events != uint64(cut) || loaded.Workload != tc.name {
				t.Fatalf("checkpoint metadata mangled: %+v", loaded)
			}

			bNormal := MustNew(NormalConfig())
			bMig := MustNew(MigrationConfig())
			lns, err := loaded.Machine("normal")
			if err != nil {
				t.Fatal(err)
			}
			if err := bNormal.Restore(*lns); err != nil {
				t.Fatal(err)
			}
			lms, err := loaded.Machine("migration")
			if err != nil {
				t.Fatal(err)
			}
			if err := bMig.Restore(*lms); err != nil {
				t.Fatal(err)
			}
			deliver(t, evs[cut:], bNormal, bMig)

			if got, want := bNormal.FinalStats(), refNormal.FinalStats(); got != want {
				t.Errorf("normal stats diverged after resume:\n got %+v\nwant %+v", got, want)
			}
			if got, want := bMig.FinalStats(), refMig.FinalStats(); got != want {
				t.Errorf("migration stats diverged after resume:\n got %+v\nwant %+v", got, want)
			}
			if bMig.ActiveCore() != refMig.ActiveCore() {
				t.Errorf("active core %d after resume, want %d", bMig.ActiveCore(), refMig.ActiveCore())
			}
		})
	}
}

// TestCheckpointRoundTripCores covers the 2- and 8-way splitters' state
// (different mechanism trees) with the synthetic workload.
func TestCheckpointRoundTripCores(t *testing.T) {
	evs := captureSynthetic(24<<10, 120_000)
	for _, cores := range []int{2, 8} {
		ref := MustNew(MigrationConfigN(cores))
		deliver(t, evs, ref)

		cut := len(evs) / 3
		a := MustNew(MigrationConfigN(cores))
		deliver(t, evs[:cut], a)
		snap, err := a.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		b := MustNew(MigrationConfigN(cores))
		if err := b.Restore(snap); err != nil {
			t.Fatal(err)
		}
		deliver(t, evs[cut:], b)
		if got, want := b.FinalStats(), ref.FinalStats(); got != want {
			t.Errorf("%d-core stats diverged after resume:\n got %+v\nwant %+v", cores, got, want)
		}
	}
}

// TestCheckpointFileAtomicSave: SaveCheckpoint + LoadCheckpoint round
// trip through the filesystem, and corruption is detected by the CRC.
func TestCheckpointFileAtomicSave(t *testing.T) {
	m := MustNew(MigrationConfig())
	trace.Drive(trace.NewCircular(4000), m, 50_000, 6, 3)
	snap, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	ck := &Checkpoint{Workload: "x", Cores: 4, Events: 50_000,
		Machines: []NamedSnapshot{{Name: "migration", Snap: snap}}}

	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := SaveCheckpoint(path, ck); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Events != ck.Events || len(loaded.Machines) != 1 {
		t.Fatalf("loaded checkpoint mangled: %+v", loaded)
	}

	// Saving again overwrites atomically (no stale temp files left).
	if err := SaveCheckpoint(path, ck); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("stray files after save: %v", entries)
	}

	// Any single corrupted byte in the payload region must be detected.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, pos := range []int{len(raw) / 3, len(raw) / 2, len(raw) - 2} {
		bad := append([]byte(nil), raw...)
		bad[pos] ^= 0x40
		if _, err := ReadCheckpoint(bytes.NewReader(bad)); err == nil {
			t.Fatalf("corrupted byte %d accepted", pos)
		}
	}
	// Truncation must be detected too.
	if _, err := ReadCheckpoint(bytes.NewReader(raw[:len(raw)/2])); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
}

// TestRestoreShapeMismatch: restoring into a machine with a different
// configuration must fail loudly.
func TestRestoreShapeMismatch(t *testing.T) {
	a := MustNew(MigrationConfigN(4))
	trace.Drive(trace.NewCircular(4000), a, 20_000, 6, 3)
	snap, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := MustNew(MigrationConfigN(8)).Restore(snap); err == nil {
		t.Fatal("4-core snapshot restored into 8-core machine")
	}
	if err := MustNew(NormalConfig()).Restore(snap); err == nil {
		t.Fatal("migration snapshot restored into normal machine")
	}
}
