// Package machine implements the paper's multi-core machine model (§2):
// per-core IL1/DL1 and L2 caches, a shared L3 (modelled as infinite —
// the paper counts L2 misses and treats L2-to-L2 misses and L3 hits
// alike), the migration-mode coherence protocol of §2.1 (modified-bit
// discipline with an update bus keeping inactive copies valid), L1
// mirroring (§2.3), and the migration controller hookup with L2
// filtering (§3.4).
//
// The model is trace-driven and event-counting, like the paper's
// simulator: it implements mem.Sink, consumes a workload's reference
// stream, and reports the event counts behind Tables 1 and 2.
package machine

import (
	"fmt"

	"repro/internal/affinity"
	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/migration"
	"repro/internal/prefetch"
	"repro/internal/telemetry"
)

// Config describes a machine.
type Config struct {
	// Cores is the number of cores (paper: 4 in migration mode; a
	// 1-core machine is the "normal" baseline).
	Cores int
	// LineShift is log2 of the cache-line size (paper: 6).
	LineShift uint
	// IL1 and DL1 are the per-core L1 organisations (paper: 16 KB,
	// 4-way). L1 content is mirrored across cores (§2.3), so one
	// physical copy is simulated.
	IL1, DL1 cache.Geometry
	// L2 is the per-core L2 organisation (paper: 512 KB, 4-way
	// skewed-associative).
	L2 cache.Geometry
	// Migration, when non-nil, enables migration mode with this
	// controller configuration. The controller's Ways must equal Cores.
	Migration *migration.Config
	// Policy names the migration policy driving the machine ("" or
	// "michaud" selects the paper's affinity controller; see
	// migration.PolicyNames for the registry). Only meaningful with
	// Migration set.
	Policy string
	// Topology, when non-nil, is the core-distance matrix handed to
	// distance-aware policies (nil = the paper's uniform chip). Only
	// meaningful with Migration set.
	Topology *migration.Topology
	// L3, when non-nil, models a finite shared L3 behind the L2s
	// (write-back); L3 misses count as memory accesses. When nil the L3
	// is infinite, as the paper assumes (it never reports L3 misses).
	L3 *cache.Geometry
	// Prefetch, when non-nil, attaches a stream prefetcher to the L2
	// miss stream (prefetches land in the active core's L2) — the
	// substrate for the §6 prefetching-interaction study.
	Prefetch *prefetch.Config
	// BroadcastThreshold, when positive (0 < t ≤ 1), enables §6's
	// update-bus bandwidth optimisation: register updates are broadcast
	// only while some deciding transition filter is within t of a sign
	// change (a possible migration); otherwise they are coalesced in a
	// register-update cache whose content (RegisterSpillBytes) is
	// spilled on each migration.
	BroadcastThreshold float64
	// CountWriteThroughL2Misses includes L2 write-allocations triggered
	// by DL1-hit stores (§2.1's "write allocation in L2 may be triggered
	// even upon DL1 hits") in the headline L2-miss count. The paper's
	// counts are trace-driven from L1-miss requests, so the default
	// (false) reports them separately in Stats.WriteThroughL2Misses.
	CountWriteThroughL2Misses bool
}

// PaperL1 returns the paper's 16 KB 4-way L1 geometry.
func PaperL1() cache.Geometry { return cache.GeometryFor(16<<10, 6, 4, false) }

// PaperL2 returns the paper's 512 KB 4-way skewed-associative L2.
func PaperL2() cache.Geometry { return cache.GeometryFor(512<<10, 6, 4, true) }

// NormalConfig returns the 1-core baseline machine of Table 2's "L2
// miss" column.
func NormalConfig() Config {
	return Config{Cores: 1, LineShift: 6, IL1: PaperL1(), DL1: PaperL1(), L2: PaperL2()}
}

// MigrationConfig returns the paper's 4-core migration-mode machine of
// Table 2's "4xL2 miss" column.
func MigrationConfig() Config { return MigrationConfigN(4) }

// MigrationConfigN returns a Table2-style migration-mode machine with 2,
// 4 or 8 cores (§6: the scheme "works also on 2-core configurations"
// and extends to more). It panics on any other core count: front ends
// validate user-supplied counts before calling (see cmd/emsim), so a
// bad argument here is an internal invariant violation.
func MigrationConfigN(cores int) Config {
	cfg, err := MigrationConfigFor(cores)
	if err != nil {
		//emlint:allowpanic documented contract: front ends validate core counts; use MigrationConfigFor for user input
		panic(err)
	}
	return cfg
}

// MigrationConfigFor is MigrationConfigN returning an error instead of
// panicking, for user-supplied core counts (the experiment drivers
// validate one configuration up front and thread it through all jobs).
func MigrationConfigFor(cores int) (Config, error) {
	mc, err := migration.ConfigForCores(cores)
	if err != nil {
		return Config{}, err
	}
	return Config{
		Cores: cores, LineShift: 6,
		IL1: PaperL1(), DL1: PaperL1(), L2: PaperL2(),
		Migration: &mc,
	}, nil
}

// MigrationConfigScenario is MigrationConfigFor extended with a policy
// and topology selection, the front ends' single entry point for
// -policy/-topology flags. Default spellings normalise away — policy
// "michaud" to "" and topology "uniform" to nil — so a run that names
// the defaults explicitly is configuration-identical (and therefore
// output- and checkpoint-byte-identical) to one that names nothing.
func MigrationConfigScenario(cores int, policy, topology string) (Config, error) {
	cfg, err := MigrationConfigFor(cores)
	if err != nil {
		return Config{}, err
	}
	if policy == migration.PolicyMichaud {
		policy = ""
	}
	if !migration.ValidPolicy(policy) {
		return Config{}, fmt.Errorf("machine: unknown policy %q (have %v)", policy, migration.PolicyNames())
	}
	cfg.Policy = policy
	if topology != "" && topology != migration.TopologyUniform {
		topo, err := migration.NewTopology(topology, cores)
		if err != nil {
			return Config{}, fmt.Errorf("machine: %w", err)
		}
		cfg.Topology = topo
	} else if !migration.ValidTopology(topology) {
		return Config{}, fmt.Errorf("machine: unknown topology %q (have %v)", topology, migration.TopologyNames())
	}
	return cfg, nil
}

// Stats are the event counts the machine accumulates. All counts are
// events, not cycles; Table 2 reports instructions-per-event.
type Stats struct {
	Instructions uint64
	IFetches     uint64
	Loads        uint64
	Stores       uint64

	// IL1Misses and DL1Misses count L1-miss requests (the stream the
	// migration controller monitors). Store misses count toward
	// DL1Misses (non-write-allocate: no DL1 fill).
	IL1Misses, DL1Misses uint64

	// L2Hits counts active-L2 hits; L2HitsAfterMigration counts the
	// subset that hit only because the request migrated.
	L2Hits               uint64
	L2HitsAfterMigration uint64
	// L2Misses counts requests that had to fetch from beyond the active
	// L2 (L2-to-L2 or L3 — the paper does not distinguish, §2.1).
	L2Misses uint64
	// L2ToL2 counts fetches satisfied by a modified remote copy
	// (forwarded and simultaneously written back, §2.1).
	L2ToL2 uint64
	// L3Writebacks counts modified lines written back to L3 (evictions
	// + forward-writebacks).
	L3Writebacks uint64
	// WriteThroughL2Misses counts L2 write-allocations from DL1-hit
	// stores when CountWriteThroughL2Misses is false.
	WriteThroughL2Misses uint64

	Migrations uint64

	// L3Hits/L3Misses/MemWritebacks are populated only with a finite L3
	// configured: L2 misses that hit/missed the shared L3, and modified
	// L3 victims written to memory.
	L3Hits, L3Misses, MemWritebacks uint64

	// PrefetchIssued/PrefetchUseful are populated only with a
	// prefetcher configured: lines inserted ahead of demand, and the
	// subset later hit by a demand request before eviction.
	PrefetchIssued, PrefetchUseful uint64

	// UpdateBusBytes approximates §2.3's update-bus traffic: ~9 bytes
	// per retired instruction (register ids + values amortised) plus 16
	// bytes per store (address + value). With BroadcastThreshold set,
	// register bytes are counted only near potential migrations, plus
	// RegisterSpillBytes per migration (§6's optimisation).
	UpdateBusBytes uint64
	// SuppressedRegBytes counts register-update bytes the §6 threshold
	// gating kept off the bus.
	SuppressedRegBytes uint64
	// L1BroadcastBytes counts line broadcasts to inactive L1s (§2.3):
	// one line per L1 fill.
	L1BroadcastBytes uint64

	// AffinityTableDropped counts affinity-table entries evicted by the
	// unbounded table's memory cap (migration.Config.TableLimit).
	// Populated by FinalStats; zero while the run is in flight.
	AffinityTableDropped uint64
}

// PerInstr returns instructions per event, the paper's Table 2 metric
// (higher is better). Returns +Inf-like large value as 0-guard: when the
// event never occurred it returns 0 and false.
func (s Stats) PerInstr(events uint64) (float64, bool) {
	if events == 0 {
		return 0, false
	}
	return float64(s.Instructions) / float64(events), true
}

// L1Misses returns the combined L1-miss request count.
func (s Stats) L1Misses() uint64 { return s.IL1Misses + s.DL1Misses }

// Outcome converts the stats into the migration package's normalised
// form.
func (s Stats) Outcome() migration.Outcome {
	return migration.Outcome{
		Instructions: s.Instructions,
		L2Misses:     s.L2Misses,
		Migrations:   s.Migrations,
	}
}

// Metric names registered by every Machine. The first group mirrors
// the headline Stats fields; the controller group exists only in
// migration mode. Keeping the names exported lets front ends and tests
// address timeline/snapshot entries without string literals.
const (
	MetricInstructions = "instructions"
	MetricRefs         = "refs"
	MetricIL1Misses    = "il1_misses"
	MetricDL1Misses    = "dl1_misses"
	MetricL2Hits       = "l2_hits"
	MetricL2Misses     = "l2_misses"
	MetricMigrations   = "migrations"

	MetricCtrlRequests      = "ctrl_requests"
	MetricCtrlFilterUpdates = "ctrl_filter_updates"
	// MetricMigrationsDeferred counts migrations a distance-aware policy
	// wanted but withheld; registered only for such policies.
	MetricMigrationsDeferred = "migrations_deferred"
	MetricAffinityHits       = "affinity_hits"
	MetricAffinityMisses     = "affinity_misses"
	MetricAffinityEvictions  = "affinity_evictions"
	// MetricMigrationGap is a histogram: per migration, the number of
	// L1-miss requests since the previous migration (bucket i>0 holds
	// gaps in [2^(i-1), 2^i)).
	MetricMigrationGap = "migration_gap"
)

// probes are the machine's own telemetry handles, mirroring the subset
// of Stats the timeline tracks per interval.
type probes struct {
	instructions telemetry.Counter
	refs         telemetry.Counter
	il1Misses    telemetry.Counter
	dl1Misses    telemetry.Counter
	l2Hits       telemetry.Counter
	l2Misses     telemetry.Counter
	migrations   telemetry.Counter
}

// Machine is the simulated multi-core. It implements mem.Sink.
type Machine struct {
	cfg Config
	il1 *cache.SetAssoc // mirrored across cores: one physical copy
	dl1 *cache.SetAssoc
	l2  []*cache.SetAssoc
	l3  *cache.SetAssoc // nil = infinite L3 (the paper's assumption)
	pf  *prefetch.Prefetcher
	// pol is the migration policy (nil in normal mode). The default is
	// the paper's Michaud controller; see Config.Policy.
	//emlint:nosnapshot non-default policy state rides the EMCKPT1 extension via PolicyState/SetPolicyState; the Michaud default serialises through ctrl into Snapshot.Controller
	pol migration.Policy
	// ctrl devirtualizes pol when it is the Michaud controller: the
	// policy methods run once per L1 miss, and the concrete call keeps
	// the default configuration's hot path free of interface dispatch.
	// Nil under non-default policies, which pay the itab lookup.
	ctrl *migration.Controller

	tel *telemetry.Registry
	//emlint:nosnapshot observational handles into tel; values restore through Snapshot.Telemetry
	probes probes

	active int
	Stats  Stats
}

// Validate rejects malformed configurations: a bad core count or cache
// geometry. (Migration-controller problems surface in New, which
// actually constructs the controller.) Experiment drivers validate one
// configuration up front and thread it through all their jobs.
func (cfg Config) Validate() error {
	if cfg.Cores < 1 {
		return fmt.Errorf("machine: need at least one core, got %d", cfg.Cores)
	}
	for _, g := range []struct {
		name string
		geo  cache.Geometry
	}{{"IL1", cfg.IL1}, {"DL1", cfg.DL1}, {"L2", cfg.L2}} {
		if err := g.geo.Validate(); err != nil {
			return fmt.Errorf("machine: %s: %w", g.name, err)
		}
	}
	if cfg.L3 != nil {
		if err := cfg.L3.Validate(); err != nil {
			return fmt.Errorf("machine: L3: %w", err)
		}
	}
	if cfg.Migration == nil {
		if cfg.Policy != "" {
			return fmt.Errorf("machine: policy %q without migration mode", cfg.Policy)
		}
		if cfg.Topology != nil {
			return fmt.Errorf("machine: topology %q without migration mode", cfg.Topology.Name)
		}
	} else if !migration.ValidPolicy(cfg.Policy) {
		return fmt.Errorf("machine: unknown policy %q (have %v)", cfg.Policy, migration.PolicyNames())
	}
	return nil
}

// New builds a machine. Malformed configurations — a bad core count,
// geometry, or migration setup — come back as errors; MustNew wraps
// them in a panic for call sites with compile-time-constant
// configurations.
func New(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{
		cfg: cfg,
		il1: cache.NewSetAssoc(cfg.IL1),
		dl1: cache.NewSetAssoc(cfg.DL1),
	}
	for i := 0; i < cfg.Cores; i++ {
		m.l2 = append(m.l2, cache.NewSetAssoc(cfg.L2))
	}
	if cfg.L3 != nil {
		m.l3 = cache.NewSetAssoc(*cfg.L3)
	}
	if cfg.Prefetch != nil {
		m.pf = prefetch.New(*cfg.Prefetch)
	}
	if cfg.Migration != nil {
		pol, err := migration.NewPolicy(cfg.Policy, *cfg.Migration, cfg.Topology)
		if err != nil {
			return nil, fmt.Errorf("machine: %w", err)
		}
		m.pol = pol
		m.ctrl, _ = pol.(*migration.Controller)
		if w := m.pol.Ways(); w != cfg.Cores {
			return nil, fmt.Errorf("machine: %d cores but a %d-way migration policy", cfg.Cores, w)
		}
	}
	m.tel = telemetry.NewRegistry()
	m.probes = probes{
		instructions: m.tel.MustCounter(MetricInstructions),
		refs:         m.tel.MustCounter(MetricRefs),
		il1Misses:    m.tel.MustCounter(MetricIL1Misses),
		dl1Misses:    m.tel.MustCounter(MetricDL1Misses),
		l2Hits:       m.tel.MustCounter(MetricL2Hits),
		l2Misses:     m.tel.MustCounter(MetricL2Misses),
		migrations:   m.tel.MustCounter(MetricMigrations),
	}
	if m.pol != nil {
		pr := migration.Probes{
			Requests:      m.tel.MustCounter(MetricCtrlRequests),
			L2MissUpdates: m.tel.MustCounter(MetricCtrlFilterUpdates),
			MigrationGap:  m.tel.MustHistogram(MetricMigrationGap),
			Table: affinity.TableProbes{
				Hits:      m.tel.MustCounter(MetricAffinityHits),
				Misses:    m.tel.MustCounter(MetricAffinityMisses),
				Evictions: m.tel.MustCounter(MetricAffinityEvictions),
			},
		}
		// The deferral counter exists only for policies that can defer
		// (keeps the default Michaud metric set — and hence checkpoint
		// telemetry snapshots — exactly as before the policy layer).
		if _, ok := m.pol.(*migration.NumaPolicy); ok {
			pr.Deferrals = m.tel.MustCounter(MetricMigrationsDeferred)
		}
		m.pol.SetProbes(pr)
	}
	return m, nil
}

// MustNew is New panicking on error, for constant configurations.
func MustNew(cfg Config) *Machine {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// ActiveCore returns the core currently executing.
func (m *Machine) ActiveCore() int { return m.active }

// FinalStats returns the accumulated Stats with the end-of-run
// controller counters (affinity-table drops) folded in.
func (m *Machine) FinalStats() Stats {
	s := m.Stats
	if m.pol != nil {
		s.AffinityTableDropped = m.pol.TableDropped()
	}
	return s
}

// Policy returns the migration policy (nil in normal mode).
func (m *Machine) Policy() migration.Policy { return m.pol }

// Controller returns the Michaud migration controller, or nil when the
// machine runs in normal mode or under a different policy.
func (m *Machine) Controller() *migration.Controller { return m.ctrl }

// polOnRequest, polOnL2Miss and polNearMigration dispatch through the
// devirtualized Michaud pointer when the default policy runs; only
// non-default policies pay the interface call. Call only with a policy
// present. Small on purpose so they inline into the hot path.
func (m *Machine) polOnRequest(line mem.Line) (int, bool) {
	if m.ctrl != nil {
		return m.ctrl.OnRequest(line)
	}
	return m.pol.OnRequest(line)
}

func (m *Machine) polOnL2Miss(isPtrLoad bool) (int, bool) {
	if m.ctrl != nil {
		return m.ctrl.OnL2Miss(isPtrLoad)
	}
	return m.pol.OnL2Miss(isPtrLoad)
}

func (m *Machine) polNearMigration(frac float64) bool {
	if m.ctrl != nil {
		return m.ctrl.NearMigration(frac)
	}
	return m.pol.NearMigration(frac)
}

// WeightedMigrationCost returns the topology-weighted migration count:
// the sum of core distances over executed migrations for distance-aware
// policies, the raw migration count otherwise (every move costs 1 on
// the uniform chip). This is the `weighted` argument of
// migration.TimeModel.CyclesWeighted.
func (m *Machine) WeightedMigrationCost() float64 {
	if dw, ok := m.pol.(migration.DistanceWeighted); ok {
		return dw.WeightedMigrationCost()
	}
	return float64(m.Stats.Migrations)
}

// Telemetry returns the machine's metric registry. The registry is
// single-goroutine like the machine itself; cross-goroutine consumers
// take Snapshot copies.
func (m *Machine) Telemetry() *telemetry.Registry { return m.tel }

// RegisterSpillBytes is the §6 register-update-cache spill: the
// architectural register file (64 × 8 B values + identifiers).
const RegisterSpillBytes = 64*8 + 64

// Instr implements mem.Sink. It runs once per trace instruction batch.
//
//emlint:hotpath
func (m *Machine) Instr(n uint64) {
	m.Stats.Instructions += n
	m.probes.instructions.Add(n)
	if m.cfg.Migration == nil {
		return
	}
	if m.cfg.BroadcastThreshold > 0 && !m.polNearMigration(m.cfg.BroadcastThreshold) {
		m.Stats.SuppressedRegBytes += 9 * n
		return
	}
	m.Stats.UpdateBusBytes += 9 * n
}

// Access implements mem.Sink. It runs once per simulated memory
// reference and must stay allocation-free in steady state (see
// TestAccessSteadyStateZeroAllocs).
//
//emlint:hotpath
func (m *Machine) Access(addr mem.Addr, kind mem.Kind) {
	line := mem.LineOf(addr, m.cfg.LineShift)
	m.probes.refs.Inc()
	switch kind {
	case mem.IFetch:
		m.Stats.IFetches++
		if _, ok := m.il1.Probe(line); ok {
			return
		}
		m.Stats.IL1Misses++
		m.probes.il1Misses.Inc()
		m.request(line, false, false)
		m.fillL1(m.il1, line)
	case mem.Load, mem.PtrLoad:
		m.Stats.Loads++
		if _, ok := m.dl1.Probe(line); ok {
			return
		}
		m.Stats.DL1Misses++
		m.probes.dl1Misses.Inc()
		m.request(line, false, kind == mem.PtrLoad)
		m.fillL1(m.dl1, line)
	case mem.Store:
		m.Stats.Stores++
		if m.cfg.Migration != nil {
			m.Stats.UpdateBusBytes += 16
		}
		if _, ok := m.dl1.Probe(line); ok {
			// DL1 hit: write-through to the active L2 without an
			// L1-miss request (invisible to the controller).
			m.storeThrough(line)
			return
		}
		// DL1 miss: non-write-allocate — no DL1 fill, but the store is
		// an L1-miss request serviced by the L2.
		m.Stats.DL1Misses++
		m.probes.dl1Misses.Inc()
		m.request(line, true, false)
	}
}

// spillRegisters accounts the catch-up broadcast a migration requires
// when register updates were being suppressed (§6).
func (m *Machine) spillRegisters() {
	if m.cfg.BroadcastThreshold > 0 {
		m.Stats.UpdateBusBytes += RegisterSpillBytes
	}
}

// fillL1 inserts a line into an L1 after an L2/L3 fetch; the line is
// broadcast to the inactive L1 copies (§2.3), which we account but do
// not duplicate (contents are mirrored). The caller has just missed
// this L1 on the same line (through Probe) and nothing on the request
// path touches the L1s, so the line is guaranteed absent and the probed
// candidate frames are still the insertion candidates — InsertProbed
// reuses them instead of re-running the indexing.
//
//emlint:hotpath
func (m *Machine) fillL1(l1 *cache.SetAssoc, line mem.Line) {
	l1.InsertProbed(line, 0)
	if m.cfg.Migration != nil {
		m.Stats.L1BroadcastBytes += uint64(m.cfg.Cores-1) << m.cfg.LineShift
	}
}

// request services an L1-miss request (§2.2's controller-visible path).
// isStore marks write-allocate semantics: the fetched/hit line becomes
// modified on the active core and loses its modified bit elsewhere.
func (m *Machine) request(line mem.Line, isStore, isPtrLoad bool) {
	if m.pol != nil {
		if core, migrated := m.polOnRequest(line); migrated {
			// Only possible with NoL2Filtering (ablation): the filter
			// moved on the request itself.
			m.Stats.Migrations++
			m.probes.migrations.Inc()
			m.active = core
			m.spillRegisters()
		}
	}
	if h, ok := m.l2[m.active].Probe(line); ok {
		m.Stats.L2Hits++
		m.probes.l2Hits.Inc()
		m.notePrefetchHit(h)
		if isStore {
			m.markModified(h, line)
		}
		return
	}
	// Active-L2 miss: with L2 filtering the transition filter moves now,
	// and a migration may redirect the request (§3.4: "a migration can
	// happen only upon a L2 miss").
	if m.pol != nil {
		if core, migrated := m.polOnL2Miss(isPtrLoad); migrated {
			m.Stats.Migrations++
			m.probes.migrations.Inc()
			m.active = core
			m.spillRegisters()
			if h, ok := m.l2[m.active].Probe(line); ok {
				// The new active L2 holds the line: serviced locally
				// after the migration, no L3 access.
				m.Stats.L2Hits++
				m.probes.l2Hits.Inc()
				m.Stats.L2HitsAfterMigration++
				m.notePrefetchHit(h)
				if isStore {
					m.markModified(h, line)
				}
				return
			}
		}
	}
	m.Stats.L2Misses++
	m.probes.l2Misses.Inc()
	m.fetch(line, isStore)
	m.prefetchAfterMiss(line)
}

// notePrefetchHit converts a prefetched line into a useful one the
// first time a demand request touches it.
func (m *Machine) notePrefetchHit(h cache.Handle) {
	if m.pf == nil {
		return
	}
	l2 := m.l2[m.active]
	if f := l2.Flags(h); f&flagPrefetched != 0 {
		l2.SetFlags(h, f&^flagPrefetched)
		m.Stats.PrefetchUseful++
	}
}

// prefetchAfterMiss trains the stream prefetcher on the demand miss and
// inserts its predictions into the active L2.
func (m *Machine) prefetchAfterMiss(line mem.Line) {
	if m.pf == nil {
		return
	}
	for _, pl := range m.pf.OnMiss(line) {
		if _, ok := m.l2[m.active].Lookup(pl); ok {
			continue
		}
		m.Stats.PrefetchIssued++
		_, victim := m.l2[m.active].Insert(pl, flagPrefetched)
		if victim.Valid && victim.Flags&cache.FlagModified != 0 {
			m.Stats.L3Writebacks++
		}
	}
}

// storeThrough performs the write-through of a DL1-hit store: update the
// active L2 (allocating on miss — §2.1), set its modified bit, reset
// modified on inactive copies.
func (m *Machine) storeThrough(line mem.Line) {
	if h, ok := m.l2[m.active].Probe(line); ok {
		m.markModified(h, line)
		return
	}
	if m.cfg.CountWriteThroughL2Misses {
		m.Stats.L2Misses++
		m.probes.l2Misses.Inc()
	} else {
		m.Stats.WriteThroughL2Misses++
	}
	m.fetch(line, true)
}

// markModified sets the modified bit on the active core's copy and
// resets it on inactive copies (which remain valid — their content is
// refreshed over the update bus, §2.1).
func (m *Machine) markModified(h cache.Handle, line mem.Line) {
	m.l2[m.active].SetFlags(h, m.l2[m.active].Flags(h)|cache.FlagModified)
	for c, l2 := range m.l2 {
		if c == m.active {
			continue
		}
		if hh, ok := l2.Lookup(line); ok {
			l2.SetFlags(hh, l2.Flags(hh)&^cache.FlagModified)
		}
	}
}

// fetch brings a line into the active L2 from a modified remote copy
// (L2-to-L2, with simultaneous writeback) or from L3. Non-modified
// remote copies cannot be forwarded (§2.1) — the line is re-fetched
// from L3.
func (m *Machine) fetch(line mem.Line, isStore bool) {
	for c, l2 := range m.l2 {
		if c == m.active {
			continue
		}
		if h, ok := l2.Lookup(line); ok && l2.Flags(h)&cache.FlagModified != 0 {
			// forward + simultaneous writeback, reset modified
			l2.SetFlags(h, l2.Flags(h)&^cache.FlagModified)
			m.Stats.L2ToL2++
			m.Stats.L3Writebacks++
			break
		}
	}
	if m.l3 != nil {
		if _, ok := m.l3.Access(line); ok {
			m.Stats.L3Hits++
		} else {
			m.Stats.L3Misses++
			_, v3 := m.l3.Insert(line, 0)
			if v3.Valid && v3.Flags&cache.FlagModified != 0 {
				m.Stats.MemWritebacks++
			}
		}
	}
	var flags uint8
	if isStore {
		flags = cache.FlagModified
	}
	// The active L2's most recent Probe missed on this exact line (in
	// request or storeThrough), so the recorded candidates are reused.
	_, victim := m.l2[m.active].InsertProbed(line, flags)
	if victim.Valid && victim.Flags&cache.FlagModified != 0 {
		m.Stats.L3Writebacks++
		if m.l3 != nil {
			if h3, ok := m.l3.Lookup(victim.Line); ok {
				m.l3.SetFlags(h3, m.l3.Flags(h3)|cache.FlagModified)
			} else {
				_, v3 := m.l3.Insert(victim.Line, cache.FlagModified)
				if v3.Valid && v3.Flags&cache.FlagModified != 0 {
					m.Stats.MemWritebacks++
				}
			}
		}
	}
	if isStore {
		// the write resets modified on any inactive copies
		for c, l2 := range m.l2 {
			if c == m.active {
				continue
			}
			if hh, ok := l2.Lookup(line); ok {
				l2.SetFlags(hh, l2.Flags(hh)&^cache.FlagModified)
			}
		}
	}
}

var _ mem.Sink = (*Machine)(nil)

// flagPrefetched marks L2 lines inserted by the prefetcher and not yet
// touched by a demand request (usefulness accounting).
const flagPrefetched uint8 = 1 << 7
