package machine

import (
	"reflect"
	"testing"

	"repro/internal/mem"
	"repro/internal/trace"
)

// batchConfigs returns fresh machine pairs for the three affinity
// regimes, one machine for the scalar path and one for the batch path.
func batchConfigs() map[string]func() *Machine {
	return map[string]func() *Machine{
		"normal":    func() *Machine { return MustNew(NormalConfig()) },
		"migration": func() *Machine { return MustNew(MigrationConfig()) },
		"migration-8": func() *Machine {
			return MustNew(MigrationConfigN(8))
		},
	}
}

// driveMix pushes n deterministic records of a mixed-kind stream
// (including an unknown kind tag, which must count a reference and
// nothing else on both paths) into sink, with instruction records
// interleaved.
func driveMix(sink mem.Sink, ws int, n int) {
	g := trace.NewCircular(uint64(ws))
	h := trace.NewCircular(uint64(ws) / 3)
	for i := 0; i < n; i++ {
		var line mem.Line
		if i%3 == 0 {
			line = mem.Line(h.Next())
		} else {
			line = mem.Line(g.Next())
		}
		addr := mem.AddrOf(line, 6)
		switch i % 16 {
		case 0, 8:
			sink.Access(addr, mem.IFetch)
		case 1:
			sink.Access(addr, mem.Store)
		case 5:
			sink.Access(addr, mem.PtrLoad)
		case 11:
			sink.Access(addr, mem.Kind(9)) // unknown kind: refs only
		default:
			sink.Access(addr, mem.Load)
		}
		if i%4 == 0 {
			sink.Instr(3)
		}
	}
}

// TestAccessBatchMatchesScalar is the machine-level differential gate:
// the same record stream delivered scalar (Access/Instr per record) and
// batched (Batcher -> AccessBatch) must leave two machines with
// identical statistics, identical telemetry snapshots, and identical
// cache/controller state snapshots.
func TestAccessBatchMatchesScalar(t *testing.T) {
	for name, mk := range batchConfigs() {
		t.Run(name, func(t *testing.T) {
			scalar, batched := mk(), mk()
			// 200k refs on a 1.5 MB circular set overflows one L2, so the
			// migration slow path is exercised from inside AccessBatch.
			const refs = 200_000
			driveMix(scalar, 24<<10, refs)
			ba := mem.NewBatcher(batched, 512)
			driveMix(ba, 24<<10, refs)
			ba.Flush()

			if scalar.FinalStats() != batched.FinalStats() {
				t.Errorf("stats diverge:\nscalar:  %+v\nbatched: %+v",
					scalar.FinalStats(), batched.FinalStats())
			}
			if !reflect.DeepEqual(scalar.Telemetry().Snapshot(), batched.Telemetry().Snapshot()) {
				t.Errorf("telemetry diverges:\nscalar:  %+v\nbatched: %+v",
					scalar.Telemetry().Snapshot(), batched.Telemetry().Snapshot())
			}
			s1, err := scalar.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			s2, err := batched.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(s1, s2) {
				t.Error("machine snapshots diverge between scalar and batched delivery")
			}
		})
	}
}

// TestAccessBatchPartialAndEmpty: AccessBatch must handle empty and
// partially filled batches (the tail flush of any stream).
func TestAccessBatchPartialAndEmpty(t *testing.T) {
	m := MustNew(NormalConfig())
	b := mem.NewBatch(64)
	m.AccessBatch(b) // empty: no-op
	if m.FinalStats() != (Stats{}) {
		t.Fatalf("empty batch mutated stats: %+v", m.FinalStats())
	}
	b.Append(mem.AddrOf(1, 6), mem.Load)
	b.AppendInstr(7)
	m.AccessBatch(b)
	st := m.FinalStats()
	if st.Loads != 1 || st.Instructions != 7 {
		t.Fatalf("partial batch: got loads=%d instrs=%d, want 1/7", st.Loads, st.Instructions)
	}
}

// TestAccessBatchRaggedPanics: the parallel-column invariant is a
// programming error worth failing loudly on.
func TestAccessBatchRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged batch did not panic")
		}
	}()
	m := MustNew(NormalConfig())
	m.AccessBatch(&mem.Batch{Addr: make([]mem.Addr, 2), Kind: make([]uint8, 1)})
}

// TestAccessBatchSteadyStateZeroAllocs extends the allocation gate to
// the batch kernel: once warm, AccessBatch must not allocate.
func TestAccessBatchSteadyStateZeroAllocs(t *testing.T) {
	for name, m := range steadyMachines() {
		g := trace.NewCircular(24 << 10)
		b := mem.NewBatch(512)
		fill := func() {
			b.Reset()
			for i := 0; !b.Full(); i++ {
				line := mem.Line(g.Next())
				switch i % 8 {
				case 0:
					b.Append(mem.AddrOf(line, 6), mem.IFetch)
				case 1:
					b.Append(mem.AddrOf(line, 6), mem.Store)
				default:
					b.Append(mem.AddrOf(line, 6), mem.Load)
				}
			}
		}
		fill()
		m.AccessBatch(b) // warm the batch path itself
		allocs := testing.AllocsPerRun(100, func() {
			fill()
			m.AccessBatch(b)
		})
		if allocs != 0 {
			t.Errorf("%s: %v allocs/op in steady-state AccessBatch; the //emlint:hotpath batch kernel must stay allocation-free", name, allocs)
		}
	}
}

// BenchmarkAccessBatchSteadyState is the batched counterpart of
// BenchmarkAccessSteadyState: same reference mix, delivered through
// mem.Batcher into AccessBatch in DefaultBatchLen batches.
func BenchmarkAccessBatchSteadyState(b *testing.B) {
	for name, m := range steadyMachines() {
		b.Run(name, func(b *testing.B) {
			g := trace.NewCircular(24 << 10)
			ba := mem.NewBatcher(m, 0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				line := mem.Line(g.Next())
				switch i % 8 {
				case 0:
					ba.Access(mem.AddrOf(line, 6), mem.IFetch)
				case 1:
					ba.Access(mem.AddrOf(line, 6), mem.Store)
				default:
					ba.Access(mem.AddrOf(line, 6), mem.Load)
				}
				ba.Instr(3)
			}
			ba.Flush()
		})
	}
}
