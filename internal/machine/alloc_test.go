package machine

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/migration"
	"repro/internal/trace"
)

// steadyMachines returns warmed-up machines covering the three affinity-
// table regimes of the simulator: the 1-core baseline (no controller),
// the Table 2 configuration (bounded skewed affinity cache), and a
// migration machine on the capped open-addressed table (TableEntries=0,
// the §4.1 idealisation under its memory cap).
func steadyMachines() map[string]*Machine {
	unboundedCfg := MigrationConfigN(4)
	mc := migration.MustConfigForCores(4)
	mc.TableEntries = 0 // unbounded table, DefaultTableLimit cap
	unboundedCfg.Migration = &mc

	ms := map[string]*Machine{
		"normal":         MustNew(NormalConfig()),
		"migration":      MustNew(MigrationConfig()),
		"migration-utab": MustNew(unboundedCfg),
	}
	// Warm up well past every structure's fill point: a 1.5 MB circular
	// working set overflows one L2 (migrations happen), and three laps
	// make every affinity-table line resident.
	for _, m := range ms {
		trace.Drive(trace.NewCircular(24<<10), m, 100_000, 6, 3)
	}
	return ms
}

// driveSteady pushes one deterministic reference mix (loads, stores,
// ifetches) through the machine.
func driveSteady(m *Machine, g *trace.Circular, i uint64) {
	line := mem.Line(g.Next())
	switch i % 8 {
	case 0:
		m.Access(mem.AddrOf(line, 6), mem.IFetch)
	case 1:
		m.Access(mem.AddrOf(line, 6), mem.Store)
	default:
		m.Access(mem.AddrOf(line, 6), mem.Load)
	}
	m.Instr(3)
}

// TestAccessSteadyStateZeroAllocs is the allocation regression gate:
// once the caches and affinity structures are warm, Machine.Access and
// Machine.Instr must not allocate at all, in any configuration. A
// failure here means a change put an allocation back on the per-
// reference hot path.
func TestAccessSteadyStateZeroAllocs(t *testing.T) {
	for name, m := range steadyMachines() {
		g := trace.NewCircular(24 << 10)
		var i uint64
		allocs := testing.AllocsPerRun(5000, func() {
			driveSteady(m, g, i)
			i++
		})
		if allocs != 0 {
			t.Errorf("%s: %v allocs/op in steady-state Access; the //emlint:hotpath functions (Machine.Access, Machine.Instr and their callees) must stay allocation-free — run `make lint` to find the offending call", name, allocs)
		}
	}
}

// BenchmarkAccessSteadyState measures the per-reference cost of the
// machine hot path with allocation reporting; `make bench` tracks its
// ns/ref and allocs/op in BENCH_simulator.json.
func BenchmarkAccessSteadyState(b *testing.B) {
	for name, m := range steadyMachines() {
		b.Run(name, func(b *testing.B) {
			g := trace.NewCircular(24 << 10)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				driveSteady(m, g, uint64(i))
			}
		})
	}
}
