package machine

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/store"
)

// goldenCheckpointBytes builds a corpus of real EMCKPT1 files: both
// machine configurations driven partway through a synthetic splittable
// stream, snapshotted and serialised exactly as emsim would. The
// fuzzer starts from structurally valid checkpoints and mutates from
// there.
func goldenCheckpointBytes(f *testing.F) [][]byte {
	f.Helper()
	var seeds [][]byte
	for _, cores := range []int{2, 4} {
		normal, err := New(NormalConfig())
		if err != nil {
			f.Fatal(err)
		}
		mig, err := New(MigrationConfigN(cores))
		if err != nil {
			f.Fatal(err)
		}
		evs := captureSynthetic(4<<10, 30_000)
		for _, e := range evs {
			for _, m := range []*Machine{normal, mig} {
				if e.isInstr {
					m.Instr(e.instr)
				} else {
					m.Access(e.addr, e.kind)
				}
			}
		}
		ns, err := normal.Snapshot()
		if err != nil {
			f.Fatal(err)
		}
		ms, err := mig.Snapshot()
		if err != nil {
			f.Fatal(err)
		}
		ck := &Checkpoint{
			Workload: "synthetic",
			Instr:    100_000,
			Cores:    cores,
			Events:   uint64(len(evs)),
			Machines: []NamedSnapshot{{Name: "normal", Snap: ns}, {Name: "migration", Snap: ms}},
		}
		var buf bytes.Buffer
		if err := WriteCheckpoint(&buf, ck); err != nil {
			f.Fatal(err)
		}
		seeds = append(seeds, buf.Bytes())
	}

	// Policy-bearing seed: a numa-on-cluster machine whose hysteresis
	// state rides the optional checkpoint extension, so the fuzzer
	// mutates the second gob value and the ext round-trip path.
	cfg, err := MigrationConfigScenario(4, "numa", "cluster")
	if err != nil {
		f.Fatal(err)
	}
	numa, err := New(cfg)
	if err != nil {
		f.Fatal(err)
	}
	for _, e := range captureSynthetic(4<<10, 30_000) {
		if e.isInstr {
			numa.Instr(e.instr)
		} else {
			numa.Access(e.addr, e.kind)
		}
	}
	nsn, err := numa.Snapshot()
	if err != nil {
		f.Fatal(err)
	}
	ps, err := numa.PolicyState()
	if err != nil {
		f.Fatal(err)
	}
	ext := &Checkpoint{
		Workload: "synthetic",
		Instr:    100_000,
		Cores:    4,
		Events:   30_000,
		Machines: []NamedSnapshot{{Name: "migration", Snap: nsn}},
	}
	ext.SetExt(&CheckpointExt{
		Policy:       "numa",
		Topology:     "cluster",
		PolicyStates: []NamedPolicyState{{Name: "migration", State: ps}},
	})
	var extBuf bytes.Buffer
	if err := WriteCheckpoint(&extBuf, ext); err != nil {
		f.Fatal(err)
	}
	seeds = append(seeds, extBuf.Bytes())

	// Degenerate inputs: truncations, a flipped payload byte, bad magic.
	full := seeds[0]
	flipped := append([]byte(nil), full...)
	flipped[len(flipped)/2] ^= 0x40
	seeds = append(seeds,
		full[:len(full)/2],
		full[:len(checkpointMagic)],
		flipped,
		[]byte("EMCKPT1\n"),
		[]byte("NOTACKPT"),
		[]byte{},
	)
	// Sibling-format seeds: valid EMSTORE1 result-store entries (same
	// magic+uvarint+payload+trailer family, different magic and checksum)
	// must be rejected by the checkpoint reader, not misparsed — the two
	// formats share directories in crashed-daemon debugging sessions.
	seeds = append(seeds,
		store.EncodeEntry([]byte(`{"workload":"mst","events":42}`)),
		store.EncodeEntry(nil),
		store.EncodeEntry(full), // a checkpoint wrapped in a store entry
	)
	return seeds
}

// restoreTarget builds a machine shaped like the snapshot claims to be,
// or reports that no such machine is constructible (also a clean
// outcome for hostile input). A checkpoint extension names the policy
// scenario for migration machines whose snapshot has no Controller.
func restoreTarget(ext *CheckpointExt, snap *Snapshot) (*Machine, bool) {
	if snap.Controller == nil && ext != nil && snap.Cores > 1 {
		cfg, err := MigrationConfigScenario(snap.Cores, ext.Policy, ext.Topology)
		if err != nil {
			return nil, false // hostile scenario names rejected cleanly
		}
		m, err := New(cfg)
		return m, err == nil
	}
	if snap.Controller == nil {
		m, err := New(NormalConfig())
		return m, err == nil
	}
	cfg, err := MigrationConfigFor(snap.Cores)
	if err != nil {
		return nil, false
	}
	m, err := New(cfg)
	return m, err == nil
}

// checkpointRestoreOracle is the shared fuzz body: arbitrary bytes
// through ReadCheckpoint must either fail cleanly or yield a checkpoint
// that (a) survives a write/re-read round trip bit-identically and
// (b) restores into a fresh machine either cleanly or with a proper
// error — never a panic, never a corrupted success.
func checkpointRestoreOracle(t *testing.T, data []byte) {
	ck, err := ReadCheckpoint(bytes.NewReader(data))
	if err != nil {
		return // rejected inputs just need to be rejected cleanly
	}
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, ck); err != nil {
		t.Fatalf("re-encoding an accepted checkpoint failed: %v", err)
	}
	ck2, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("re-reading a rewritten checkpoint failed: %v", err)
	}
	if !reflect.DeepEqual(ck, ck2) {
		t.Fatalf("checkpoint changed across write/read round trip:\n%+v\nvs\n%+v", ck, ck2)
	}
	for i := range ck.Machines {
		snap := &ck.Machines[i].Snap
		m, ok := restoreTarget(ck.Ext(), snap)
		if !ok {
			continue
		}
		if err := m.Restore(*snap); err != nil {
			continue // shape mismatch detected and reported: clean outcome
		}
		// A restore that claims success must have installed the
		// snapshot's observable state.
		if m.Stats != snap.Stats {
			t.Fatalf("restore succeeded but stats differ: %+v vs %+v", m.Stats, snap.Stats)
		}
		// Policy state from the extension must apply cleanly or fail
		// cleanly — mutated state blobs may not panic the decoder.
		if ext := ck.Ext(); ext != nil {
			if ps, err := ext.State(ck.Machines[i].Name); err == nil {
				_ = m.SetPolicyState(ps)
			}
		}
	}
}

// FuzzCheckpointRestore fuzzes the EMCKPT1 deserialise → restore path
// with golden checkpoints as the seed corpus.
func FuzzCheckpointRestore(f *testing.F) {
	for _, s := range goldenCheckpointBytes(f) {
		f.Add(s)
	}
	f.Fuzz(checkpointRestoreOracle)
}

// TestFuzzCheckpointCorpusSmoke runs the fuzz oracle over a golden
// corpus in a plain test, so `go test` exercises the path even without
// -fuzz.
func TestFuzzCheckpointCorpusSmoke(t *testing.T) {
	for i, s := range goldenCheckpointSeedsForTest(t) {
		t.Run(fmt.Sprintf("seed%d", i), func(t *testing.T) {
			checkpointRestoreOracle(t, s)
		})
	}
}

// goldenCheckpointSeedsForTest rebuilds the golden corpus under a
// *testing.T (the builder wants testing.F for f.Helper/f.Fatal).
func goldenCheckpointSeedsForTest(t *testing.T) [][]byte {
	t.Helper()
	normal, err := New(NormalConfig())
	if err != nil {
		t.Fatal(err)
	}
	evs := captureSynthetic(4<<10, 20_000)
	deliver(t, evs, normal)
	ns, err := normal.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	ck := &Checkpoint{Workload: "synthetic", Instr: 50_000, Cores: 1, Events: uint64(len(evs)),
		Machines: []NamedSnapshot{{Name: "normal", Snap: ns}}}
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, ck); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	flipped := append([]byte(nil), full...)
	flipped[len(flipped)/2] ^= 0x40
	return [][]byte{full, full[:len(full)/2], flipped, []byte("EMCKPT1\n"), {}}
}
