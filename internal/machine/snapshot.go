package machine

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/migration"
	"repro/internal/prefetch"
	"repro/internal/telemetry"
)

// Snapshot is the complete serialisable state of a Machine: every cache,
// the prefetcher, the migration controller (splitters, affinity table),
// the active core, and the accumulated Stats. Restoring a snapshot into
// a machine built from the same Config and re-driving the same reference
// stream from the capture point reproduces an uninterrupted run
// bit-for-bit — the property the checkpoint round-trip tests assert.
type Snapshot struct {
	Cores  int
	Active int

	IL1, DL1 cache.SetAssocState
	L2       []cache.SetAssocState
	L3       *cache.SetAssocState
	Prefetch *prefetch.State

	Controller *migration.ControllerState

	Stats Stats

	// Telemetry carries the metric registry's values. Checkpoints
	// written before telemetry existed decode it as the zero Snapshot,
	// which restores every metric to zero (well-defined, see
	// telemetry.Registry.SetState).
	Telemetry telemetry.Snapshot
}

// Snapshot captures the machine's current state. Telemetry is captured
// first: the controller's state capture walks the affinity table
// through non-counting paths, but ordering the metric copy ahead of
// everything else makes "capture never perturbs metrics" structural.
func (m *Machine) Snapshot() (Snapshot, error) {
	s := Snapshot{
		Cores:     m.cfg.Cores,
		Active:    m.active,
		IL1:       m.il1.State(),
		DL1:       m.dl1.State(),
		Stats:     m.Stats,
		Telemetry: m.tel.Snapshot(),
	}
	for _, l2 := range m.l2 {
		s.L2 = append(s.L2, l2.State())
	}
	if m.l3 != nil {
		st := m.l3.State()
		s.L3 = &st
	}
	if m.pf != nil {
		st := m.pf.State()
		s.Prefetch = &st
	}
	// Only the default Michaud controller's state rides the Controller
	// field — that keeps the Snapshot gob shape (and hence checkpoint
	// bytes) exactly as before the policy layer. Other policies
	// serialise through PolicyState into the checkpoint extension.
	if c := m.Controller(); c != nil {
		st, err := c.State()
		if err != nil {
			return Snapshot{}, err
		}
		s.Controller = &st
	}
	return s, nil
}

// PolicyState captures the migration policy's serialisable state, for
// checkpoint payloads that carry non-default policies. Errors when the
// machine runs in normal mode.
func (m *Machine) PolicyState() (migration.PolicyState, error) {
	if m.pol == nil {
		return migration.PolicyState{}, fmt.Errorf("machine: no migration policy to capture")
	}
	return m.pol.PolicyState()
}

// SetPolicyState restores a policy state captured by PolicyState. The
// machine must have been built with the same policy and configuration.
func (m *Machine) SetPolicyState(ps migration.PolicyState) error {
	if m.pol == nil {
		return fmt.Errorf("machine: no migration policy to restore into")
	}
	return m.pol.SetPolicyState(ps)
}

// Restore loads a snapshot into the machine. The machine must have been
// built from the same Config as the one that produced the snapshot;
// every component validates its shape before mutating itself. A failed
// Restore can still leave earlier components updated, so the caller must
// treat the machine as unusable after an error.
func (m *Machine) Restore(s Snapshot) error {
	if s.Cores != m.cfg.Cores {
		return fmt.Errorf("machine: snapshot has %d cores, machine has %d", s.Cores, m.cfg.Cores)
	}
	if s.Active < 0 || s.Active >= m.cfg.Cores {
		return fmt.Errorf("machine: snapshot active core %d out of %d", s.Active, m.cfg.Cores)
	}
	if len(s.L2) != len(m.l2) {
		return fmt.Errorf("machine: snapshot has %d L2s, machine has %d", len(s.L2), len(m.l2))
	}
	if (s.L3 != nil) != (m.l3 != nil) {
		return fmt.Errorf("machine: snapshot and machine disagree on L3 presence")
	}
	if (s.Prefetch != nil) != (m.pf != nil) {
		return fmt.Errorf("machine: snapshot and machine disagree on prefetcher presence")
	}
	if (s.Controller != nil) != (m.Controller() != nil) {
		return fmt.Errorf("machine: snapshot and machine disagree on migration controller presence")
	}
	if err := m.il1.SetState(s.IL1); err != nil {
		return fmt.Errorf("machine: IL1: %w", err)
	}
	if err := m.dl1.SetState(s.DL1); err != nil {
		return fmt.Errorf("machine: DL1: %w", err)
	}
	for i, st := range s.L2 {
		if err := m.l2[i].SetState(st); err != nil {
			return fmt.Errorf("machine: L2[%d]: %w", i, err)
		}
	}
	if s.L3 != nil {
		if err := m.l3.SetState(*s.L3); err != nil {
			return fmt.Errorf("machine: L3: %w", err)
		}
	}
	if s.Prefetch != nil {
		if err := m.pf.SetState(*s.Prefetch); err != nil {
			return fmt.Errorf("machine: %w", err)
		}
	}
	if s.Controller != nil {
		if err := m.Controller().SetState(*s.Controller); err != nil {
			return fmt.Errorf("machine: %w", err)
		}
	}
	// Last, so metric values overwrite anything restore-time table
	// rebuilding might have counted.
	if err := m.tel.SetState(s.Telemetry); err != nil {
		return fmt.Errorf("machine: %w", err)
	}
	m.active = s.Active
	m.Stats = s.Stats
	return nil
}
