package machine

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/affinity"
	"repro/internal/mem"
)

// recordedFeed adapts a captured event stream to a cluster Feed,
// delivering scalar records (the feedSink batches them internally).
func recordedFeed(evs []recordedEvent) Feed {
	return func(sink mem.BatchSink) error {
		for _, e := range evs {
			if e.isInstr {
				sink.Instr(e.instr)
			} else {
				sink.Access(e.addr, e.kind)
			}
		}
		return nil
	}
}

// batchedFeed delivers the same stream through the AccessBatch path.
func batchedFeed(evs []recordedEvent) Feed {
	return func(sink mem.BatchSink) error {
		ba := mem.NewBatcher(sink, 0)
		for _, e := range evs {
			if e.isInstr {
				ba.Instr(e.instr)
			} else {
				ba.Access(e.addr, e.kind)
			}
		}
		ba.Flush()
		return nil
	}
}

// TestClusterSingleProgramMatchesMachine: a 1-program cluster is a
// plain machine — same stream, same stats, bit for bit. Program 0 runs
// unshifted, so the multiprogram plumbing must be invisible.
func TestClusterSingleProgramMatchesMachine(t *testing.T) {
	evs := captureWorkload(t, "181.mcf", 300_000)

	solo, err := New(MigrationConfigN(4))
	if err != nil {
		t.Fatal(err)
	}
	deliver(t, evs, solo)

	c, err := NewCluster(MigrationConfigN(4), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run([]Feed{recordedFeed(evs)}); err != nil {
		t.Fatal(err)
	}
	if got, want := c.Program(0).FinalStats(), solo.FinalStats(); got != want {
		t.Fatalf("1-program cluster diverged from plain machine:\n%+v\nvs\n%+v", got, want)
	}
}

// TestClusterDeterminism: the coordinator's round robin makes a cluster
// run a pure function of its feeds — per-program stats and controller
// states are identical across repeated runs, regardless of producer
// goroutine scheduling, and identical whether the feeds deliver scalar
// records or pre-built batches.
func TestClusterDeterminism(t *testing.T) {
	streams := [][]recordedEvent{
		captureWorkload(t, "mst", 150_000),
		captureWorkload(t, "181.mcf", 150_000),
		captureSynthetic(8<<10, 60_000),
	}
	run := func(mk func([]recordedEvent) Feed) []Stats {
		c, err := NewCluster(MigrationConfigN(4), len(streams))
		if err != nil {
			t.Fatal(err)
		}
		feeds := make([]Feed, len(streams))
		for i, evs := range streams {
			feeds[i] = mk(evs)
		}
		if err := c.Run(feeds); err != nil {
			t.Fatal(err)
		}
		out := make([]Stats, len(streams))
		for i := range streams {
			out[i] = c.Program(i).FinalStats()
		}
		return out
	}
	first := run(recordedFeed)
	for round := 0; round < 3; round++ {
		if again := run(recordedFeed); !reflect.DeepEqual(again, first) {
			t.Fatalf("cluster run diverged on repeat %d:\n%+v\nvs\n%+v", round, again, first)
		}
	}
	if batched := run(batchedFeed); !reflect.DeepEqual(batched, first) {
		t.Fatalf("batched feeds diverged from scalar feeds:\n%+v\nvs\n%+v", batched, first)
	}
}

// TestClusterTotalsSumPerProgram: the cluster's Totals is exactly the
// field-wise sum of every program's FinalStats (AddStats aggregates
// reflectively, so a new Stats field cannot silently escape the sum).
func TestClusterTotalsSumPerProgram(t *testing.T) {
	c, err := NewCluster(MigrationConfigN(4), 3)
	if err != nil {
		t.Fatal(err)
	}
	feeds := []Feed{
		recordedFeed(captureWorkload(t, "mst", 100_000)),
		recordedFeed(captureWorkload(t, "em3d", 100_000)),
		recordedFeed(captureSynthetic(4<<10, 40_000)),
	}
	if err := c.Run(feeds); err != nil {
		t.Fatal(err)
	}
	var sum Stats
	for i := 0; i < c.Programs(); i++ {
		sum = AddStats(sum, c.Program(i).FinalStats())
	}
	if sum != c.Totals() {
		t.Fatalf("per-program stats do not sum to totals:\nsum:    %+v\ntotals: %+v", sum, c.Totals())
	}
	if sum == (Stats{}) {
		t.Fatal("cluster consumed no events")
	}
}

// tableLines flattens an affinity table state into its populated lines.
func tableLines(t *testing.T, ts affinity.TableState) []mem.Line {
	t.Helper()
	var lines []mem.Line
	switch ts.Kind {
	case "cache":
		for i, v := range ts.Cache.Valid {
			if v {
				lines = append(lines, ts.Cache.Lines[i])
			}
		}
	case "unbounded":
		for _, e := range ts.Unbounded.Entries {
			lines = append(lines, e.Line)
		}
	default:
		t.Fatalf("unknown table state kind %q", ts.Kind)
	}
	return lines
}

// TestClusterAffinityIsolation: affinity tables are private per
// program, and ProgramOffset keeps their contents in disjoint address
// spaces — every line in program p's table decodes to an address inside
// p's range. A line outside the range would mean one program's affinity
// state was polluted by another's references.
func TestClusterAffinityIsolation(t *testing.T) {
	c, err := NewCluster(MigrationConfigN(4), 2)
	if err != nil {
		t.Fatal(err)
	}
	feeds := []Feed{
		recordedFeed(captureWorkload(t, "mst", 200_000)),
		recordedFeed(captureWorkload(t, "em3d", 200_000)),
	}
	if err := c.Run(feeds); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < c.Programs(); p++ {
		ctrl := c.Program(p).Controller()
		if ctrl == nil {
			t.Fatalf("program %d has no Michaud controller", p)
		}
		st, err := ctrl.State()
		if err != nil {
			t.Fatal(err)
		}
		lo := mem.LineOf(ProgramOffset(p), mem.DefaultLineShift)
		hi := mem.LineOf(ProgramOffset(p+1), mem.DefaultLineShift)
		lines := tableLines(t, st.Table)
		if len(lines) == 0 {
			t.Fatalf("program %d's affinity table is empty — the workload did not exercise it", p)
		}
		for _, ln := range lines {
			if ln < lo || ln >= hi {
				t.Fatalf("program %d's affinity table holds line %#x outside its address space [%#x, %#x)",
					p, ln, lo, hi)
			}
		}
	}
}

// TestClusterSharedL2Contention: co-scheduling two cache-pressured
// programs on one L2 complex must cost at least one of them misses
// versus owning the complex alone, and instruction counts stay
// per-program exact (contention shows up in cache events only).
func TestClusterSharedL2Contention(t *testing.T) {
	evs := captureWorkload(t, "181.mcf", 300_000)

	solo, err := New(MigrationConfigN(4))
	if err != nil {
		t.Fatal(err)
	}
	deliver(t, evs, solo)

	c, err := NewCluster(MigrationConfigN(4), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run([]Feed{recordedFeed(evs), recordedFeed(evs)}); err != nil {
		t.Fatal(err)
	}
	p0, p1 := c.Program(0).FinalStats(), c.Program(1).FinalStats()
	if p0.Instructions != solo.FinalStats().Instructions || p1.Instructions != p0.Instructions {
		t.Fatalf("instruction counts perturbed by co-scheduling: solo %d, p0 %d, p1 %d",
			solo.FinalStats().Instructions, p0.Instructions, p1.Instructions)
	}
	if p0.L2Misses+p1.L2Misses <= 2*solo.FinalStats().L2Misses {
		t.Fatalf("no contention visible: contended misses %d+%d vs 2x solo %d",
			p0.L2Misses, p1.L2Misses, solo.FinalStats().L2Misses)
	}
}

// TestClusterFeedErrors: a failing feed aborts nothing — the other
// programs run to completion — and every feed error comes back joined.
func TestClusterFeedErrors(t *testing.T) {
	c, err := NewCluster(MigrationConfigN(4), 2)
	if err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("generator exploded")
	evs := captureWorkload(t, "mst", 100_000)
	err = c.Run([]Feed{
		func(sink mem.BatchSink) error {
			sink.Access(0x1000, mem.Load)
			return sentinel
		},
		recordedFeed(evs),
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("feed error lost: %v", err)
	}
	if got := c.Program(1).FinalStats(); got.Instructions == 0 {
		t.Fatal("healthy program did not run to completion after sibling feed failed")
	}
}

// TestClusterRejectsBadShapes: program/feed count mismatches and
// zero-program clusters fail loudly.
func TestClusterRejectsBadShapes(t *testing.T) {
	if _, err := NewCluster(MigrationConfigN(4), 0); err == nil {
		t.Fatal("0-program cluster accepted")
	}
	c, err := NewCluster(MigrationConfigN(4), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run([]Feed{recordedFeed(nil)}); err == nil {
		t.Fatal("1 feed for 2 programs accepted")
	}
}

// TestClusterPolicyScenario: a cluster built from a non-default
// scenario config gives every program its own policy instance — the
// numa policies accumulate state independently and no program aliases
// another's policy.
func TestClusterPolicyScenario(t *testing.T) {
	cfg, err := MigrationConfigScenario(4, "numa", "cluster")
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.Program(0).Policy() == c.Program(1).Policy() {
		t.Fatal("programs share one policy instance")
	}
	if err := c.Run([]Feed{
		recordedFeed(captureWorkload(t, "mst", 150_000)),
		recordedFeed(captureWorkload(t, "181.mcf", 150_000)),
	}); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 2; p++ {
		ps, err := c.Program(p).PolicyState()
		if err != nil {
			t.Fatal(err)
		}
		if ps.Name != "numa" {
			t.Fatalf("program %d policy state named %q, want numa", p, ps.Name)
		}
	}
	if reflect.DeepEqual(mustPolicyState(t, c.Program(0)), mustPolicyState(t, c.Program(1))) {
		t.Fatal("distinct workloads produced identical policy state — state may be shared")
	}
}

func mustPolicyState(t *testing.T, m *Machine) any {
	t.Helper()
	ps, err := m.PolicyState()
	if err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("%+v", ps)
}
