package machine

import "bytes"

// RoundTripCheckpoint pushes a checkpoint through the full EMCKPT1
// encode/decode path in memory and returns the decoded copy. The
// interval sampler warm-starts every measured interval from a
// round-tripped snapshot instead of the live machine state: anything
// the checkpoint format failed to capture would desynchronize the
// estimate from a full-fidelity run immediately, so the format's
// completeness is exercised on the production path, not only in tests
// (which pin the same property per interval boundary).
func RoundTripCheckpoint(ck *Checkpoint) (*Checkpoint, error) {
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, ck); err != nil {
		return nil, err
	}
	return ReadCheckpoint(&buf)
}
