package machine

import "repro/internal/mem"

// Batched event delivery: the columnar fast path of the simulator.
// AccessBatch consumes a mem.Batch in one call, keeping the L1 probe
// and the per-record statistics in a tight loop with local accumulators
// that are folded into Stats and the telemetry counters once per batch.
// Only L1 misses drop into the branchy request/migration slow path —
// the same request/fetch/storeThrough code the scalar Access uses, so
// the two entry points cannot drift apart semantically. The scalar and
// batched paths are pinned equivalent by TestAccessBatchMatchesScalar.
//
// Equivalence notes (the differential tests rely on these):
//   - Counter accumulation is observationally safe because telemetry
//     snapshots, timeline ticks and checkpoints only read the counters
//     between sink calls — never inside one — and batch producers align
//     flushes to those boundaries.
//   - ctrl.NearMigration is evaluated per instruction record, in stream
//     order, exactly as the scalar Instr does: the register-update
//     suppression window depends on the controller state at that point
//     of the stream.
//   - Unknown kind tags count a reference and nothing else, matching
//     the scalar Access (refs increments before the kind switch).

// AccessBatch implements mem.BatchSink. It delivers every record of b
// in order, semantically identical to calling Access/Instr one record
// at a time.
//
//emlint:batchpair Access
//emlint:batchpair Instr
//emlint:hotpath
func (m *Machine) AccessBatch(b *mem.Batch) {
	kinds := b.Kind
	addrs := b.Addr
	if len(addrs) != len(kinds) {
		raggedBatch()
	}
	il1, dl1 := m.il1, m.dl1
	shift := m.cfg.LineShift
	migration := m.cfg.Migration != nil
	var refs, fetches, loads, stores, instrs, busBytes uint64
	for i, k := range kinds {
		if k == mem.KindInstr {
			n := uint64(addrs[i])
			instrs += n
			if migration {
				if m.cfg.BroadcastThreshold > 0 && !m.polNearMigration(m.cfg.BroadcastThreshold) {
					m.Stats.SuppressedRegBytes += 9 * n
				} else {
					busBytes += 9 * n
				}
			}
			continue
		}
		refs++
		line := mem.LineOf(addrs[i], shift)
		switch mem.Kind(k) {
		case mem.IFetch:
			fetches++
			if _, ok := il1.Probe(line); ok {
				continue
			}
			m.Stats.IL1Misses++
			m.probes.il1Misses.Inc()
			m.request(line, false, false)
			m.fillL1(il1, line)
		case mem.Load, mem.PtrLoad:
			loads++
			if _, ok := dl1.Probe(line); ok {
				continue
			}
			m.Stats.DL1Misses++
			m.probes.dl1Misses.Inc()
			m.request(line, false, mem.Kind(k) == mem.PtrLoad)
			m.fillL1(dl1, line)
		case mem.Store:
			stores++
			if migration {
				busBytes += 16
			}
			if _, ok := dl1.Probe(line); ok {
				m.storeThrough(line)
				continue
			}
			m.Stats.DL1Misses++
			m.probes.dl1Misses.Inc()
			m.request(line, true, false)
		}
	}
	m.Stats.IFetches += fetches
	m.Stats.Loads += loads
	m.Stats.Stores += stores
	m.Stats.Instructions += instrs
	m.Stats.UpdateBusBytes += busBytes
	m.probes.refs.Add(refs)
	m.probes.instructions.Add(instrs)
}

// raggedBatch reports a violated Batch invariant. Kept out of the
// AccessBatch body so the hot loop stays free of the interface boxing a
// panic argument implies.
//
//emlint:coldpath terminal: only reached on a programming error
func raggedBatch() {
	//emlint:allowpanic Batch invariant: parallel columns always have equal length
	panic("machine: ragged batch")
}

var _ mem.BatchSink = (*Machine)(nil)
