package machine

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/trace"
)

// modifiedCopies counts how many L2s hold line with the modified bit.
func modifiedCopies(m *Machine, line mem.Line) (valid, modified int) {
	for _, l2 := range m.l2 {
		if h, ok := l2.Lookup(line); ok {
			valid++
			if l2.Flags(h)&cache.FlagModified != 0 {
				modified++
			}
		}
	}
	return
}

// TestSingleModifiedCopyInvariant enforces §2.1's central coherence
// rule — "at most a single copy of the line can be marked modified at
// any time" — under a randomized load/store stream with migrations.
func TestSingleModifiedCopyInvariant(t *testing.T) {
	m := MustNew(MigrationConfig())
	rng := trace.NewRNG(31)
	const span = 24 << 10
	var stores []mem.Line
	for i := 0; i < 600_000; i++ {
		line := mem.Line(rng.Uint64n(span))
		kind := mem.Load
		if rng.Uint64n(4) == 0 {
			kind = mem.Store
			stores = append(stores, line)
			if len(stores) > 64 {
				stores = stores[1:]
			}
		}
		m.Access(mem.AddrOf(line, 6), kind)
		// Check the invariant on recently stored lines every so often.
		if i%1000 == 0 {
			for _, l := range stores {
				if _, mod := modifiedCopies(m, l); mod > 1 {
					t.Fatalf("line %d has %d modified copies after ref %d", l, mod, i)
				}
			}
		}
	}
	if m.Stats.Migrations == 0 {
		t.Skip("stream produced no migrations; invariant checked but weakly")
	}
}

// TestInactiveCopiesStayValid: §2.1 — writing on the active core must
// NOT invalidate inactive copies; their modified bit is merely reset.
func TestInactiveCopiesStayValid(t *testing.T) {
	m := MustNew(MigrationConfig())
	line := mem.Line(0x999)

	// Load the line on core 0 (active), dirty it.
	m.Access(mem.AddrOf(line, 6), mem.Load)
	m.Access(mem.AddrOf(line, 6), mem.Store)
	v, mod := modifiedCopies(m, line)
	if v != 1 || mod != 1 {
		t.Fatalf("after store: %d valid, %d modified copies", v, mod)
	}

	// Plant a stale copy on another core by hand (the state a past
	// active phase would have left) and store again on the active core:
	// the remote copy must stay valid with modified reset.
	m.l2[2].Insert(line, cache.FlagModified)
	// Evict the line from DL1 so the store is a write-through... it is
	// DL1-resident, which also exercises storeThrough.
	m.Access(mem.AddrOf(line, 6), mem.Store)
	v, mod = modifiedCopies(m, line)
	if v != 2 {
		t.Fatalf("inactive copy invalidated: %d valid copies", v)
	}
	if mod != 1 {
		t.Fatalf("modified copies = %d, want exactly 1 (the active core's)", mod)
	}
	if h, ok := m.l2[2].Lookup(line); !ok || m.l2[2].Flags(h)&cache.FlagModified != 0 {
		t.Fatal("remote copy should be valid and clean")
	}
}

// TestL2ToL2ForwardOnlyModified: §2.1 — a modified remote copy is
// forwarded (with simultaneous writeback and modified reset); a clean
// remote copy cannot be forwarded and the line is re-fetched from L3.
func TestL2ToL2ForwardOnlyModified(t *testing.T) {
	m := MustNew(MigrationConfig())
	line := mem.Line(0x777)

	// Plant a MODIFIED copy on core 3; active core 0 misses.
	m.l2[3].Insert(line, cache.FlagModified)
	m.Access(mem.AddrOf(line, 6), mem.Load)
	if m.Stats.L2ToL2 != 1 {
		t.Fatalf("modified remote copy not forwarded: L2ToL2 = %d", m.Stats.L2ToL2)
	}
	if m.Stats.L3Writebacks != 1 {
		t.Fatalf("forward must write back simultaneously: writebacks = %d", m.Stats.L3Writebacks)
	}
	if h, ok := m.l2[3].Lookup(line); !ok || m.l2[3].Flags(h)&cache.FlagModified != 0 {
		t.Fatal("forwarding must reset the source's modified bit")
	}

	// Plant a CLEAN copy of another line on core 3; no forward happens.
	line2 := mem.Line(0x888)
	m.l2[3].Insert(line2, 0)
	m.Access(mem.AddrOf(line2, 6), mem.Load)
	if m.Stats.L2ToL2 != 1 {
		t.Fatalf("clean remote copy was forwarded: L2ToL2 = %d", m.Stats.L2ToL2)
	}
}

// TestWritebackOnlyModified: evicting a clean line must not write back.
func TestWritebackOnlyModified(t *testing.T) {
	m := MustNew(NormalConfig())
	// Fill the L2 with clean loads only; evictions happen, no writebacks.
	g := trace.NewCircular(20 << 10)
	for i := 0; i < 60<<10; i++ {
		m.Access(mem.AddrOf(mem.Line(g.Next()), 6), mem.Load)
	}
	if m.Stats.L3Writebacks != 0 {
		t.Fatalf("clean evictions wrote back %d lines", m.Stats.L3Writebacks)
	}
}

// TestActiveCoreTracksController: the machine's active core must always
// equal the controller's.
func TestActiveCoreTracksController(t *testing.T) {
	m := MustNew(MigrationConfig())
	g := trace.NewCircular(24 << 10)
	for i := 0; i < 400_000; i++ {
		m.Access(mem.AddrOf(mem.Line(g.Next()), 6), mem.Load)
		if m.ActiveCore() != m.Controller().Active() {
			t.Fatalf("machine active %d != controller active %d", m.ActiveCore(), m.Controller().Active())
		}
	}
}
