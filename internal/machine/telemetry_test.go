package machine

import (
	"reflect"
	"testing"
)

// counterOrFail reads a named counter from a telemetry snapshot.
func counterOrFail(t *testing.T, m *Machine, name string) uint64 {
	t.Helper()
	v, ok := m.Telemetry().Snapshot().Counter(name)
	if !ok {
		t.Fatalf("counter %q not registered", name)
	}
	return v
}

// TestTelemetryMirrorsStats: the registry's counters must track the
// Stats fields they mirror exactly — the property that lets the
// timeline report per-interval deltas of the paper's Table 2 events.
func TestTelemetryMirrorsStats(t *testing.T) {
	evs := captureSynthetic(24<<10, 120_000)
	for _, tc := range []struct {
		name string
		m    *Machine
	}{
		{"normal", MustNew(NormalConfig())},
		{"migration", MustNew(MigrationConfig())},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := tc.m
			deliver(t, evs, m)
			mirror := []struct {
				metric string
				want   uint64
			}{
				{MetricInstructions, m.Stats.Instructions},
				{MetricRefs, m.Stats.IFetches + m.Stats.Loads + m.Stats.Stores},
				{MetricIL1Misses, m.Stats.IL1Misses},
				{MetricDL1Misses, m.Stats.DL1Misses},
				{MetricL2Hits, m.Stats.L2Hits},
				{MetricL2Misses, m.Stats.L2Misses},
				{MetricMigrations, m.Stats.Migrations},
			}
			for _, mm := range mirror {
				if got := counterOrFail(t, m, mm.metric); got != mm.want {
					t.Errorf("%s = %d, Stats say %d", mm.metric, got, mm.want)
				}
			}
			if m.Stats.Instructions == 0 || m.Stats.L2Misses == 0 {
				t.Fatal("workload too small to exercise the probes")
			}
		})
	}
}

// TestTelemetryControllerProbes: migration-mode machines must mirror
// the controller and affinity-table counters, and the migration-gap
// histogram must hold exactly one observation per migration.
func TestTelemetryControllerProbes(t *testing.T) {
	evs := captureSynthetic(24<<10, 150_000)
	m := MustNew(MigrationConfig())
	deliver(t, evs, m)
	ctrl := m.Controller()
	if ctrl.Migrations == 0 {
		t.Fatal("circular sweep must migrate")
	}
	if got := counterOrFail(t, m, MetricCtrlRequests); got != ctrl.Requests {
		t.Errorf("ctrl_requests = %d, controller says %d", got, ctrl.Requests)
	}
	if got := counterOrFail(t, m, MetricCtrlFilterUpdates); got != ctrl.L2MissUpdates {
		t.Errorf("ctrl_filter_updates = %d, controller says %d", got, ctrl.L2MissUpdates)
	}
	ac := ctrl.AffinityCache()
	if ac == nil {
		t.Fatal("Table2 config uses a bounded affinity cache")
	}
	if got := counterOrFail(t, m, MetricAffinityHits); got != ac.Hits {
		t.Errorf("affinity_hits = %d, cache says %d", got, ac.Hits)
	}
	if got := counterOrFail(t, m, MetricAffinityMisses); got != ac.Misses {
		t.Errorf("affinity_misses = %d, cache says %d", got, ac.Misses)
	}
	if got := counterOrFail(t, m, MetricAffinityEvictions); got != ac.Evictions {
		t.Errorf("affinity_evictions = %d, cache says %d", got, ac.Evictions)
	}
	var gapObs uint64
	for _, hv := range m.Telemetry().Snapshot().Hists {
		if hv.Name == MetricMigrationGap {
			for _, b := range hv.Buckets {
				gapObs += b
			}
		}
	}
	if gapObs != ctrl.Migrations {
		t.Errorf("migration_gap holds %d observations, want one per migration (%d)", gapObs, ctrl.Migrations)
	}
}

// TestTelemetrySnapshotRestore: metric values must ride the machine
// snapshot — a restored machine finishing a run reports the same
// telemetry as an uninterrupted one, and capturing a snapshot must not
// itself perturb the metrics.
func TestTelemetrySnapshotRestore(t *testing.T) {
	evs := captureSynthetic(24<<10, 120_000)
	ref := MustNew(MigrationConfig())
	deliver(t, evs, ref)

	cut := len(evs) / 3
	a := MustNew(MigrationConfig())
	deliver(t, evs[:cut], a)
	snap1, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Capture is side-effect free on metrics: a second capture sees
	// identical values.
	snap2, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap1.Telemetry, snap2.Telemetry) {
		t.Fatalf("snapshot capture perturbed telemetry:\n%+v\nvs\n%+v", snap1.Telemetry, snap2.Telemetry)
	}

	b := MustNew(MigrationConfig())
	if err := b.Restore(snap1); err != nil {
		t.Fatal(err)
	}
	deliver(t, evs[cut:], b)
	if !reflect.DeepEqual(ref.Telemetry().Snapshot(), b.Telemetry().Snapshot()) {
		t.Fatalf("restored run diverged:\nref %+v\ngot %+v",
			ref.Telemetry().Snapshot(), b.Telemetry().Snapshot())
	}
}
