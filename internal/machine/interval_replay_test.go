package machine

import (
	"bytes"
	"testing"
)

// The interval-sampling warm-start property: at any interval boundary,
// replacing a machine with a fresh one restored from an EMCKPT1
// round-trip of its own snapshot and replaying the next interval must
// be indistinguishable from never having stopped — not just in final
// stats but in the checkpoint bytes of the end state, which cover every
// field the format carries. This is the invariant that lets emsim
// -sample warm-start every measured interval from checkpoint state and
// still claim full-fidelity interval measurements.

// intervalScenario is one machine configuration under test.
type intervalScenario struct {
	name             string
	cores            int
	policy, topology string // "" = the scenario needs no extension section
	build            func() (*Machine, error)
}

func intervalScenarios() []intervalScenario {
	return []intervalScenario{
		{name: "normal", cores: 1,
			build: func() (*Machine, error) { return New(NormalConfig()) }},
		{name: "migration", cores: 4,
			build: func() (*Machine, error) { return New(MigrationConfigN(4)) }},
		{name: "numa-cluster", cores: 4, policy: "numa", topology: "cluster",
			build: func() (*Machine, error) {
				cfg, err := MigrationConfigScenario(4, "numa", "cluster")
				if err != nil {
					return nil, err
				}
				return New(cfg)
			}},
	}
}

// warmRestart round-trips m's state through the EMCKPT1 encode/decode
// path — extension section included when the scenario needs one — and
// returns a fresh machine restored from the decoded bytes, exactly as
// the sampling simulator's warm start does.
func warmRestart(t *testing.T, sc intervalScenario, m *Machine, events uint64) *Machine {
	t.Helper()
	snap, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	ck := &Checkpoint{
		Cores:    sc.cores,
		Events:   events,
		Machines: []NamedSnapshot{{Name: sc.name, Snap: snap}},
	}
	if sc.policy != "" || sc.topology != "" {
		ps, err := m.PolicyState()
		if err != nil {
			t.Fatal(err)
		}
		ck.SetExt(&CheckpointExt{
			Policy:       sc.policy,
			Topology:     sc.topology,
			PolicyStates: []NamedPolicyState{{Name: sc.name, State: ps}},
		})
	}
	ck, err = RoundTripCheckpoint(ck)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := sc.build()
	if err != nil {
		t.Fatal(err)
	}
	rs, err := ck.Machine(sc.name)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Restore(*rs); err != nil {
		t.Fatal(err)
	}
	if ext := ck.Ext(); ext != nil {
		ps, err := ext.State(sc.name)
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.SetPolicyState(ps); err != nil {
			t.Fatal(err)
		}
	}
	return fresh
}

// endStateBytes serialises a machine's complete observable end state to
// checkpoint bytes, so two runs can be compared byte-for-byte rather
// than field-by-field.
func endStateBytes(t *testing.T, sc intervalScenario, m *Machine) []byte {
	t.Helper()
	snap, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	ck := &Checkpoint{
		Cores:    sc.cores,
		Machines: []NamedSnapshot{{Name: sc.name, Snap: snap}},
	}
	if sc.policy != "" || sc.topology != "" {
		ps, err := m.PolicyState()
		if err != nil {
			t.Fatal(err)
		}
		ck.SetExt(&CheckpointExt{
			Policy:       sc.policy,
			Topology:     sc.topology,
			PolicyStates: []NamedPolicyState{{Name: sc.name, State: ps}},
		})
	}
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, ck); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestIntervalWarmStartReplayIdentical: restore-at-interval-i, replay
// to interval i+1 == uninterrupted run, per boundary, for all three
// scenario shapes. The interrupted run warm-restarts at EVERY interval
// boundary, so each i→i+1 segment runs on checkpoint-born state; the
// end states must still serialise to identical bytes.
func TestIntervalWarmStartReplayIdentical(t *testing.T) {
	// A working set larger than one L2's 8192 lines keeps the caches
	// churning (and the migration controller active) across boundaries.
	evs := captureSynthetic(12<<10, 120_000)
	const interval = 17_000 // off any power-of-two structure in the stream

	for _, sc := range intervalScenarios() {
		t.Run(sc.name, func(t *testing.T) {
			ref, err := sc.build()
			if err != nil {
				t.Fatal(err)
			}
			deliver(t, evs, ref)

			m, err := sc.build()
			if err != nil {
				t.Fatal(err)
			}
			for start := 0; start < len(evs); start += interval {
				end := start + interval
				if end > len(evs) {
					end = len(evs)
				}
				deliver(t, evs[start:end], m)
				if end < len(evs) {
					m = warmRestart(t, sc, m, uint64(end))
				}
			}

			if m.Stats != ref.Stats {
				t.Errorf("stats diverge after warm-started replay:\nwarm: %+v\nref:  %+v", m.Stats, ref.Stats)
			}
			wb, rb := endStateBytes(t, sc, m), endStateBytes(t, sc, ref)
			if !bytes.Equal(wb, rb) {
				t.Errorf("end-state checkpoint bytes diverge (%d vs %d bytes)", len(wb), len(rb))
			}
		})
	}
}
