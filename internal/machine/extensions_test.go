package machine

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/migration"
	"repro/internal/prefetch"
	"repro/internal/trace"
)

// TestCoreScaling exercises the §6 extension: 2, 4 and 8 cores on a
// circular working set sized so each step up in core count captures
// more of it. With a 3.5 MB working set: one 512 KB L2 thrashes, 2
// cores (1 MB) still thrash, 4 (2 MB) still miss, 8 (4 MB) hold it.
// Miss counts must be non-increasing in the core count, with a large
// drop once the aggregate covers the set.
func TestCoreScaling(t *testing.T) {
	const ws = 56 << 10 // lines = 3.5 MB
	run := func(cores int) Stats {
		var m *Machine
		if cores == 1 {
			m = MustNew(NormalConfig())
		} else {
			m = MustNew(MigrationConfigN(cores))
		}
		trace.Drive(trace.NewCircular(ws), m, 25*ws, 6, 3)
		return m.Stats
	}
	s1 := run(1)
	s2 := run(2)
	s4 := run(4)
	s8 := run(8)

	if !(s8.L2Misses < s4.L2Misses && s4.L2Misses <= s2.L2Misses && s2.L2Misses <= s1.L2Misses+s1.L2Misses/10) {
		t.Fatalf("miss counts not improving with cores: 1:%d 2:%d 4:%d 8:%d",
			s1.L2Misses, s2.L2Misses, s4.L2Misses, s8.L2Misses)
	}
	if s8.Migrations == 0 || s2.Migrations == 0 {
		t.Fatal("no migrations in scaled configurations")
	}

	// 8 cores = 4 MB aggregate > 3.5 MB working set: once the three
	// splitting levels have converged (they cascade, so it takes longer
	// than the 4-way case), the steady-state miss rate must collapse.
	// Measure the last 25 laps after a 100-lap warm-up.
	m8 := MustNew(MigrationConfigN(8))
	g := trace.NewCircular(ws)
	trace.Drive(g, m8, 100*ws, 6, 3)
	warm := m8.Stats.L2Misses
	trace.Drive(g, m8, 25*ws, 6, 3)
	steady := m8.Stats.L2Misses - warm
	baselineRate := float64(s1.L2Misses) / 25.0 // misses per lap, 1-core
	if float64(steady)/25.0 > 0.5*baselineRate {
		t.Fatalf("8-core steady-state rate %.0f misses/lap vs baseline %.0f: aggregate not captured",
			float64(steady)/25.0, baselineRate)
	}
}

// TestTwoCoreSplitsHalfMegabyte: the 2-core machine must capture a
// working set that fits 1 MB but not 512 KB.
func TestTwoCoreSplitsHalfMegabyte(t *testing.T) {
	const ws = 12 << 10 // 768 KB
	normal := MustNew(NormalConfig())
	trace.Drive(trace.NewCircular(ws), normal, 40*ws, 6, 3)
	two := MustNew(MigrationConfigN(2))
	trace.Drive(trace.NewCircular(ws), two, 40*ws, 6, 3)
	if ratio := float64(two.Stats.L2Misses) / float64(normal.Stats.L2Misses); ratio > 0.5 {
		t.Fatalf("2-core migration ineffective: miss ratio %.3f", ratio)
	}
}

// TestPointerLoadFiltering: with PointerLoadsOnly, plain-load misses
// must never trigger migrations, pointer-load misses must.
func TestPointerLoadFiltering(t *testing.T) {
	mc := migration.MustConfigForCores(4)
	mc.PointerLoadsOnly = true
	cfg := MigrationConfigN(4)
	cfg.Migration = &mc

	// Plain loads only: no migrations ever.
	m := MustNew(cfg)
	g := trace.NewCircular(24 << 10)
	for i := 0; i < 800_000; i++ {
		m.Access(mem.AddrOf(mem.Line(g.Next()), 6), mem.Load)
	}
	if m.Stats.Migrations != 0 {
		t.Fatalf("%d migrations from plain loads under PointerLoadsOnly", m.Stats.Migrations)
	}

	// Same stream as pointer loads: migrations return.
	m2 := MustNew(cfg)
	g2 := trace.NewCircular(24 << 10)
	for i := 0; i < 800_000; i++ {
		m2.Access(mem.AddrOf(mem.Line(g2.Next()), 6), mem.PtrLoad)
	}
	if m2.Stats.Migrations == 0 {
		t.Fatal("no migrations from pointer loads under PointerLoadsOnly")
	}
}

// TestFiniteL3 exercises the optional shared L3: hits and misses are
// classified, and a working set fitting the L3 stops going to memory
// after the cold pass.
func TestFiniteL3(t *testing.T) {
	l3 := cache.GeometryFor(8<<20, 6, 8, false) // 8 MB shared L3
	cfg := NormalConfig()
	cfg.L3 = &l3
	m := MustNew(cfg)
	const ws = 32 << 10 // 2 MB: misses L2, fits L3
	trace.Drive(trace.NewCircular(ws), m, 10*ws, 6, 3)
	if m.Stats.L3Misses < uint64(ws) {
		t.Fatalf("L3 misses %d below cold-fill %d", m.Stats.L3Misses, ws)
	}
	// After the cold pass, everything is an L3 hit.
	if m.Stats.L3Misses > uint64(ws)+uint64(ws)/20 {
		t.Fatalf("L3 misses %d: working set should fit the 8MB L3", m.Stats.L3Misses)
	}
	if m.Stats.L3Hits == 0 {
		t.Fatal("no L3 hits recorded")
	}
	if m.Stats.L3Hits+m.Stats.L3Misses != m.Stats.L2Misses {
		t.Fatalf("L3 accounting broken: hits %d + misses %d != L2 misses %d",
			m.Stats.L3Hits, m.Stats.L3Misses, m.Stats.L2Misses)
	}
}

// TestPrefetcherOnSequentialStream: a sequential scan larger than the L2
// must be largely covered by the stream prefetcher (misses drop, most
// prefetches useful).
func TestPrefetcherOnSequentialStream(t *testing.T) {
	const ws = 24 << 10
	base := MustNew(NormalConfig())
	trace.Drive(trace.NewCircular(ws), base, 10*ws, 6, 3)

	pfc := prefetch.Default()
	cfg := NormalConfig()
	cfg.Prefetch = &pfc
	pf := MustNew(cfg)
	trace.Drive(trace.NewCircular(ws), pf, 10*ws, 6, 3)

	if pf.Stats.PrefetchIssued == 0 {
		t.Fatal("prefetcher idle on a sequential stream")
	}
	useful := float64(pf.Stats.PrefetchUseful) / float64(pf.Stats.PrefetchIssued)
	if useful < 0.8 {
		t.Fatalf("prefetch usefulness %.2f on a sequential stream, want > 0.8", useful)
	}
	if pf.Stats.L2Misses*2 > base.Stats.L2Misses {
		t.Fatalf("prefetching removed too few misses: %d vs %d", pf.Stats.L2Misses, base.Stats.L2Misses)
	}
}

// TestPrefetcherUselessOnRandomStream: on uniform random misses the
// prefetcher must stay quiet (few trained streams).
func TestPrefetcherUselessOnRandomStream(t *testing.T) {
	pfc := prefetch.Default()
	cfg := NormalConfig()
	cfg.Prefetch = &pfc
	m := MustNew(cfg)
	trace.Drive(trace.Must(trace.NewUniform(64<<10, 3)), m, 400_000, 6, 3)
	frac := float64(m.Stats.PrefetchIssued) / float64(m.Stats.L2Misses+1)
	if frac > 0.2 {
		t.Fatalf("prefetcher fired on %.2f of random misses", frac)
	}
}

// TestPrefetchPlusMigration is the §6 interaction: on a circular
// working set both help; combined they must not be worse than the best
// single technique by any meaningful margin.
func TestPrefetchPlusMigration(t *testing.T) {
	const ws = 24 << 10
	run := func(migON, pfON bool) uint64 {
		var cfg Config
		if migON {
			cfg = MigrationConfig()
		} else {
			cfg = NormalConfig()
		}
		if pfON {
			pfc := prefetch.Default()
			cfg.Prefetch = &pfc
		}
		m := MustNew(cfg)
		trace.Drive(trace.NewCircular(ws), m, 20*ws, 6, 3)
		return m.Stats.L2Misses
	}
	neither := run(false, false)
	onlyMig := run(true, false)
	onlyPf := run(false, true)
	both := run(true, true)
	best := onlyMig
	if onlyPf < best {
		best = onlyPf
	}
	if both > best*3/2+1000 {
		t.Fatalf("combining hurts: neither=%d mig=%d pf=%d both=%d", neither, onlyMig, onlyPf, both)
	}
	if onlyMig >= neither || onlyPf >= neither {
		t.Fatalf("techniques ineffective alone: neither=%d mig=%d pf=%d", neither, onlyMig, onlyPf)
	}
}

// TestMismatchedWaysErrors documents the cores/controller contract:
// a machine whose core count disagrees with the controller's way count
// is a configuration error, reported rather than panicked.
func TestMismatchedWaysErrors(t *testing.T) {
	mc := migration.MustConfigForCores(8)
	if _, err := New(Config{Cores: 4, LineShift: 6, IL1: PaperL1(), DL1: PaperL1(), L2: PaperL2(), Migration: &mc}); err == nil {
		t.Fatal("no error on cores/ways mismatch")
	}
}

// TestBroadcastThreshold exercises §6's update-bus optimisation: gating
// register broadcasts on filter proximity must remove the bulk of the
// bus traffic on a migration-friendly workload while charging the
// register-spill on each migration.
func TestBroadcastThreshold(t *testing.T) {
	run := func(threshold float64) Stats {
		cfg := MigrationConfig()
		cfg.BroadcastThreshold = threshold
		m := MustNew(cfg)
		trace.Drive(trace.NewCircular(24<<10), m, 1_200_000, 6, 3)
		return m.Stats
	}
	full := run(0)
	gated := run(0.05)

	if gated.SuppressedRegBytes == 0 {
		t.Fatal("gating suppressed nothing")
	}
	// Miss/migration behaviour is unchanged — the gate only affects bus
	// accounting.
	if gated.L2Misses != full.L2Misses || gated.Migrations != full.Migrations {
		t.Fatalf("gating changed simulation behaviour: misses %d vs %d, migrations %d vs %d",
			gated.L2Misses, full.L2Misses, gated.Migrations, full.Migrations)
	}
	// The gated bus must carry far less than the full broadcast.
	if gated.UpdateBusBytes*2 > full.UpdateBusBytes {
		t.Fatalf("gating ineffective: %d vs %d bus bytes", gated.UpdateBusBytes, full.UpdateBusBytes)
	}
	// Conservation: suppressed + carried ≈ full + spills.
	total := gated.UpdateBusBytes + gated.SuppressedRegBytes
	want := full.UpdateBusBytes + gated.Migrations*RegisterSpillBytes
	if total != want {
		t.Fatalf("bus byte conservation: %d vs %d", total, want)
	}
}
