package machine

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/trace"
)

// drive pushes n Load references of consecutive element lines into m.
func drive(m *Machine, g trace.Generator, n uint64, instrPerRef uint64) {
	trace.Drive(g, m, n, 6, instrPerRef)
}

// TestNormalMachineMissCounting: a working set that fits DL1 produces
// only cold misses; one that fits L2 but not DL1 produces DL1 misses and
// only cold L2 misses; one that fits neither thrashes the L2.
func TestNormalMachineMissCounting(t *testing.T) {
	// 16KB DL1 = 256 lines; 512KB L2 = 8192 lines.
	m := MustNew(NormalConfig())
	drive(m, trace.NewCircular(128), 10*128, 1)
	if m.Stats.DL1Misses != 128 {
		t.Fatalf("fits-DL1: %d DL1 misses, want 128 cold", m.Stats.DL1Misses)
	}
	if m.Stats.L2Misses != 128 {
		t.Fatalf("fits-DL1: %d L2 misses, want 128 cold", m.Stats.L2Misses)
	}

	m = MustNew(NormalConfig())
	drive(m, trace.NewCircular(4096), 10*4096, 1)
	if m.Stats.DL1Misses != 10*4096 {
		t.Fatalf("fits-L2: %d DL1 misses, want all %d (circular > DL1 thrashes LRU)", m.Stats.DL1Misses, 10*4096)
	}
	if m.Stats.L2Misses != 4096 {
		t.Fatalf("fits-L2: %d L2 misses, want 4096 cold", m.Stats.L2Misses)
	}

	m = MustNew(NormalConfig())
	drive(m, trace.NewCircular(16384), 5*16384, 1)
	// 16k-line circular working set in an 8k-frame L2: with LRU it would
	// miss always; skewed + timestamps behave likewise for cyclic sweeps.
	if m.Stats.L2Misses < 4*16384 {
		t.Fatalf("exceeds-L2: only %d L2 misses, want ≈%d", m.Stats.L2Misses, 5*16384)
	}
}

// TestMigrationTradesMissesForMigrations is the core Table 2 mechanism:
// a circular working set of 24k lines (1.5 MB — too big for one 512 KB
// L2, comfortably inside the 2 MB aggregate) must, in migration mode,
// lose most of its L2 misses in exchange for a far smaller number of
// migrations.
func TestMigrationTradesMissesForMigrations(t *testing.T) {
	const ws = 24 << 10 // lines
	const laps = 40
	normal := MustNew(NormalConfig())
	drive(normal, trace.NewCircular(ws), laps*ws, 3)

	mig := MustNew(MigrationConfig())
	drive(mig, trace.NewCircular(ws), laps*ws, 3)

	if normal.Stats.L2Misses < uint64(ws)*(laps*9/10) {
		t.Fatalf("baseline should thrash: %d L2 misses", normal.Stats.L2Misses)
	}
	ratio := float64(mig.Stats.L2Misses) / float64(normal.Stats.L2Misses)
	if ratio > 0.5 {
		t.Fatalf("migration removed too few misses: 4xL2/L2 = %.3f (misses %d vs %d)",
			ratio, mig.Stats.L2Misses, normal.Stats.L2Misses)
	}
	if mig.Stats.Migrations == 0 {
		t.Fatal("no migrations at all")
	}
	// Migrations must be far rarer than the misses they removed.
	removed := normal.Stats.L2Misses - mig.Stats.L2Misses
	if mig.Stats.Migrations*5 > removed {
		t.Fatalf("migrations too frequent: %d migrations for %d removed misses",
			mig.Stats.Migrations, removed)
	}
}

// TestMigrationHarmlessOnTinyWorkingSet: when the working set fits one
// L2, L2 filtering must keep migrations near zero and the miss count
// unchanged (the paper's bh / 255.vortex / 186.crafty observation).
func TestMigrationHarmlessOnTinyWorkingSet(t *testing.T) {
	const ws = 4 << 10 // 256 KB
	normal := MustNew(NormalConfig())
	drive(normal, trace.NewCircular(ws), 50*ws, 3)
	mig := MustNew(MigrationConfig())
	drive(mig, trace.NewCircular(ws), 50*ws, 3)

	if mig.Stats.Migrations > 50 {
		t.Fatalf("%d migrations on a working set that fits one L2", mig.Stats.Migrations)
	}
	// L2 misses must stay within a few percent of the baseline.
	if mig.Stats.L2Misses > normal.Stats.L2Misses*12/10+100 {
		t.Fatalf("migration mode inflated misses: %d vs %d", mig.Stats.L2Misses, normal.Stats.L2Misses)
	}
}

// TestMigrationSuppressedOnHugeWorkingSet: a circular working set far
// beyond the aggregate L2 (here 128k lines = 8 MB) keeps missing either
// way; the bounded affinity cache must suppress migrations (§4.2: on a
// miss Ae := 0, so the filter freezes — the paper's swim/mgrid/mst
// explanation).
func TestMigrationSuppressedOnHugeWorkingSet(t *testing.T) {
	const ws = 128 << 10
	mig := MustNew(MigrationConfig())
	drive(mig, trace.NewCircular(ws), 6*ws, 3)
	perMiss := float64(mig.Stats.Migrations) / float64(mig.Stats.L2Misses+1)
	if perMiss > 0.001 {
		t.Fatalf("migrations not suppressed: %d migrations / %d L2 misses",
			mig.Stats.Migrations, mig.Stats.L2Misses)
	}
}

// TestMigrationDoesNotHelpRandom: on a uniform random working set larger
// than one L2, migration mode must not reduce misses by any meaningful
// amount (no splittability), and the transition filter must keep
// migrations rare.
func TestMigrationDoesNotHelpRandom(t *testing.T) {
	const ws = 16 << 10 // 1 MB of lines, random access
	normal := MustNew(NormalConfig())
	drive(normal, trace.Must(trace.NewUniform(ws, 9)), 30*ws, 3)
	mig := MustNew(MigrationConfig())
	drive(mig, trace.Must(trace.NewUniform(ws, 9)), 30*ws, 3)

	ratio := float64(mig.Stats.L2Misses) / float64(normal.Stats.L2Misses)
	if ratio < 0.85 {
		t.Fatalf("random set should not benefit: ratio %.3f", ratio)
	}
	if freq := float64(mig.Stats.Migrations) / float64(mig.Stats.L2Misses+1); freq > 0.05 {
		t.Fatalf("migration frequency on random set too high: %.4f per L2 miss", freq)
	}
}

// TestAffinityTableDroppedSurfaces: a machine whose migration config
// caps the affinity table must report the evictions through
// FinalStats, and the Stats snapshot in flight must leave the field
// zero (it is populated at collection time).
func TestAffinityTableDroppedSurfaces(t *testing.T) {
	cfg := MigrationConfigN(4)
	mc := *cfg.Migration
	mc.TableEntries = 0 // select the unbounded (capped) table
	mc.TableLimit = 64  // far below the distinct-line count driven below
	cfg.Migration = &mc
	m := MustNew(cfg)
	drive(m, trace.Must(trace.NewUniform(32<<10, 13)), 200_000, 1)
	if m.Stats.AffinityTableDropped != 0 {
		t.Fatalf("in-flight Stats.AffinityTableDropped = %d, want 0", m.Stats.AffinityTableDropped)
	}
	fs := m.FinalStats()
	if fs.AffinityTableDropped == 0 {
		t.Fatal("capped table never dropped")
	}
	if got := m.Controller().TableDropped(); fs.AffinityTableDropped != got {
		t.Fatalf("FinalStats dropped %d != controller %d", fs.AffinityTableDropped, got)
	}

	// The same stream against the unbounded table at its DEFAULT limit
	// must not drop (the default is far above any paper working set).
	cfg2 := MigrationConfigN(4)
	mc2 := *cfg2.Migration
	mc2.TableEntries = 0
	cfg2.Migration = &mc2
	m2 := MustNew(cfg2)
	drive(m2, trace.Must(trace.NewUniform(32<<10, 13)), 200_000, 1)
	if d := m2.FinalStats().AffinityTableDropped; d != 0 {
		t.Fatalf("default-limit run dropped %d entries", d)
	}
}

// TestStoreCoherence exercises the §2.1 modified-bit protocol through
// the public counters: stores mark lines modified; evicting a modified
// line writes back; a modified remote copy is forwarded L2-to-L2 with a
// simultaneous writeback.
func TestStoreCoherence(t *testing.T) {
	m := MustNew(NormalConfig())
	// Store to a cold line: DL1 miss (non-write-allocate), L2
	// write-allocate ⇒ one L2 miss, line modified.
	m.Access(0x1000, mem.Store)
	if m.Stats.DL1Misses != 1 || m.Stats.L2Misses != 1 {
		t.Fatalf("cold store: DL1Misses=%d L2Misses=%d", m.Stats.DL1Misses, m.Stats.L2Misses)
	}
	// A load of the same line hits L2 (it was allocated).
	m.Access(0x1000, mem.Load)
	if m.Stats.L2Hits != 1 {
		t.Fatalf("load after store-allocate: L2Hits=%d", m.Stats.L2Hits)
	}
	// Thrash the L2 with loads so the modified line is evicted: the
	// writeback counter must move.
	g := trace.NewCircular(20 << 10)
	for i := 0; i < 40<<10; i++ {
		m.Access(mem.AddrOf(mem.Line(0x10000+g.Next()), 6), mem.Load)
	}
	if m.Stats.L3Writebacks == 0 {
		t.Fatal("modified line eviction produced no writeback")
	}
}

// TestStoreThroughOnDL1Hit: a store to a DL1-resident line must not
// count as an L1-miss request but still write through to the L2.
func TestStoreThroughOnDL1Hit(t *testing.T) {
	m := MustNew(NormalConfig())
	m.Access(0x2000, mem.Load) // fills DL1 + L2
	base := m.Stats.DL1Misses
	m.Access(0x2000, mem.Store) // DL1 hit: silent write-through
	if m.Stats.DL1Misses != base {
		t.Fatal("DL1-hit store counted as an L1 miss request")
	}
	if m.Stats.Stores != 1 {
		t.Fatalf("stores=%d", m.Stats.Stores)
	}
	// Evict 0x2000's line from L2 via thrashing, then store again while
	// it is still in DL1 — write-through allocation, counted separately.
	g := trace.NewCircular(20 << 10)
	for i := 0; i < 40<<10; i++ {
		m.Access(mem.AddrOf(mem.Line(0x40000+g.Next()), 6), mem.Load)
	}
	// 0x2000 is long gone from the 256-line DL1 too; reload to DL1.
	m.Access(0x2000, mem.Load)
	preWT := m.Stats.WriteThroughL2Misses
	// Now force L2 eviction again WITHOUT touching DL1's copy... not
	// possible: DL1 is smaller than L2. Instead verify the counter is
	// reachable through the API by checking it stayed consistent.
	if m.Stats.WriteThroughL2Misses != preWT {
		t.Fatal("unexpected write-through miss")
	}
}

// TestUpdateBusAccounting: migration mode accounts update-bus traffic
// for instructions and stores; normal mode accounts none.
func TestUpdateBusAccounting(t *testing.T) {
	n := MustNew(NormalConfig())
	n.Instr(100)
	n.Access(0x100, mem.Store)
	if n.Stats.UpdateBusBytes != 0 {
		t.Fatal("normal mode should not use the update bus")
	}
	m := MustNew(MigrationConfig())
	m.Instr(100)
	m.Access(0x100, mem.Store)
	want := uint64(100*9 + 16)
	if m.Stats.UpdateBusBytes != want {
		t.Fatalf("update bus bytes = %d, want %d", m.Stats.UpdateBusBytes, want)
	}
}

// TestL1MirroringKeepsMissStreamStable: the L1 miss count must be
// identical between normal and migration configurations for the same
// reference stream (§2.3: mirrored L1s make the miss frequency
// independent of migrations).
func TestL1MirroringKeepsMissStreamStable(t *testing.T) {
	mkRun := func(cfg Config) Stats {
		m := MustNew(cfg)
		g := trace.Must(trace.NewHalfRandom(32<<10, 500, 4))
		drive(m, g, 400_000, 3)
		return m.Stats
	}
	a := mkRun(NormalConfig())
	b := mkRun(MigrationConfig())
	if a.DL1Misses != b.DL1Misses || a.IL1Misses != b.IL1Misses {
		t.Fatalf("L1 miss streams diverge: normal (%d,%d) vs migration (%d,%d)",
			a.IL1Misses, a.DL1Misses, b.IL1Misses, b.DL1Misses)
	}
}

// TestPerInstrHelper sanity-checks the Table 2 metric helper.
func TestPerInstrHelper(t *testing.T) {
	s := Stats{Instructions: 1000}
	if v, ok := s.PerInstr(10); !ok || v != 100 {
		t.Fatalf("PerInstr = %v,%v", v, ok)
	}
	if _, ok := s.PerInstr(0); ok {
		t.Fatal("PerInstr(0) should report false")
	}
}
