package machine

// Multiprogrammed co-scheduling: K programs contending for the same
// per-core L2s. The paper runs one sequential program over otherwise
// idle cores; a real chip time-shares. A Cluster builds one Machine per
// program — private L1s, private migration policy and affinity state,
// private Stats — but aliases every program onto one shared set of L2
// arrays (and the shared L3, when configured), so cache contention
// emerges naturally from interleaved insertions rather than from an
// analytical model.
//
// Scheduling is a deterministic round robin with a quantum of one
// record batch: each turn consumes exactly one batch from every live
// program, in program order. Producers run concurrently (one goroutine
// per feed, pumping owned batch copies through an unbuffered channel)
// but the coordinator alone touches the machines and imposes the total
// order, so a multiprogram run is a pure function of its feeds — the
// property the determinism tests pin across -j worker counts.
//
// Programs are kept in disjoint address spaces by ProgramOffset (a
// per-program high-bit base, the trace-driven analogue of an ASID):
// identical workloads on two programs still compete for L2 frames via
// set indexing, but never alias the same lines, and the affinity
// isolation tests can attribute every table entry to its owner.

import (
	"errors"
	"fmt"
	"reflect"
	"sync"

	"repro/internal/mem"
)

// programOffsetShift places each program's address space 2^40 bytes
// apart — far above any workload's footprint, well below mem.Addr's
// 64-bit range for any plausible program count.
const programOffsetShift = 40

// ProgramOffset returns program p's address-space base. Program 0 runs
// unshifted, so a 1-program cluster reproduces a plain machine's
// stream exactly.
func ProgramOffset(p int) mem.Addr { return mem.Addr(uint64(p) << programOffsetShift) }

// Cluster is K program contexts sharing one set of L2s.
type Cluster struct {
	cfg      Config
	programs []*Machine
}

// NewCluster builds k programs over a shared L2 (and L3) complex. Every
// program gets its own Machine built from cfg; programs beyond the
// first alias their L2 and L3 arrays onto program 0's.
func NewCluster(cfg Config, k int) (*Cluster, error) {
	if k < 1 {
		return nil, fmt.Errorf("machine: cluster needs at least one program, got %d", k)
	}
	c := &Cluster{cfg: cfg}
	for i := 0; i < k; i++ {
		m, err := New(cfg)
		if err != nil {
			return nil, fmt.Errorf("machine: program %d: %w", i, err)
		}
		if i > 0 {
			m.l2 = c.programs[0].l2
			m.l3 = c.programs[0].l3
		}
		c.programs = append(c.programs, m)
	}
	return c, nil
}

// Programs returns the program count.
func (c *Cluster) Programs() int { return len(c.programs) }

// Program returns program p's machine: its private stats, policy and
// telemetry. The L2 state it exposes is the shared complex.
func (c *Cluster) Program(p int) *Machine { return c.programs[p] }

// Totals returns the cluster-wide event counts: the field-wise sum of
// every program's FinalStats.
func (c *Cluster) Totals() Stats {
	var t Stats
	for _, m := range c.programs {
		t = AddStats(t, m.FinalStats())
	}
	return t
}

// AddStats returns the field-wise sum a+b. Stats is uniformly uint64,
// so the sum is computed reflectively and new fields are aggregated
// automatically instead of silently dropped.
func AddStats(a, b Stats) Stats {
	va := reflect.ValueOf(&a).Elem()
	vb := reflect.ValueOf(b)
	for i := 0; i < va.NumField(); i++ {
		va.Field(i).SetUint(va.Field(i).Uint() + vb.Field(i).Uint())
	}
	return a
}

// Feed produces one program's reference stream into the sink: scalar
// Access/Instr calls, AccessBatch deliveries, or a mix. The sink
// buffers scalar records into batches internally; the feed must simply
// return when its stream ends.
type Feed func(sink mem.BatchSink) error

// Run drives the cluster to completion: one feed per program, round
// robin, one batch per program per turn. Feeds run concurrently but
// delivery order is deterministic (see the package comment). A feed
// error aborts nothing — remaining programs run to completion so the
// machines stay consistent — and all feed errors come back joined.
func (c *Cluster) Run(feeds []Feed) error {
	if len(feeds) != len(c.programs) {
		return fmt.Errorf("machine: %d feeds for %d programs", len(feeds), len(c.programs))
	}
	chans := make([]chan *mem.Batch, len(feeds))
	errs := make([]error, len(feeds))
	var wg sync.WaitGroup
	for i, f := range feeds {
		ch := make(chan *mem.Batch)
		chans[i] = ch
		wg.Add(1)
		go func(i int, f Feed) {
			defer wg.Done()
			defer close(ch)
			s := newFeedSink(ch)
			if err := f(s); err != nil {
				errs[i] = fmt.Errorf("machine: program %d feed: %w", i, err)
				return
			}
			s.flush()
		}(i, f)
	}
	live := len(chans)
	open := make([]bool, len(chans))
	for i := range open {
		open[i] = true
	}
	for live > 0 {
		for p, ch := range chans {
			if !open[p] {
				continue
			}
			b, ok := <-ch
			if !ok {
				open[p] = false
				live--
				continue
			}
			c.apply(p, b)
		}
	}
	wg.Wait()
	return errors.Join(errs...)
}

// apply rebases program p's access records into its private address
// space and delivers the batch to its machine. Instruction records
// carry counts, not addresses, and are never rebased.
func (c *Cluster) apply(p int, b *mem.Batch) {
	if off := ProgramOffset(p); off != 0 {
		for i, k := range b.Kind {
			if k != mem.KindInstr {
				b.Addr[i] += off
			}
		}
	}
	c.programs[p].AccessBatch(b)
}

// feedSink adapts one producer goroutine to the coordinator's channel:
// scalar records accumulate into a batch, and every outgoing batch is
// copied into one of two alternating buffers the sink owns. Double
// buffering is sufficient because the channel is unbuffered and the
// coordinator fully applies a batch before its next receive on the same
// channel: when the send of buffer B unblocks, buffer A is already
// consumed.
type feedSink struct {
	ch   chan<- *mem.Batch
	bufs [2]*mem.Batch
	cur  int
	acc  *mem.Batch
}

func newFeedSink(ch chan<- *mem.Batch) *feedSink {
	return &feedSink{
		ch:   ch,
		bufs: [2]*mem.Batch{mem.NewBatch(0), mem.NewBatch(0)},
		acc:  mem.NewBatch(0),
	}
}

// send copies b into an owned buffer and hands it to the coordinator.
func (s *feedSink) send(b *mem.Batch) {
	if b.Len() == 0 {
		return
	}
	buf := s.bufs[s.cur]
	s.cur ^= 1
	buf.Addr = append(buf.Addr[:0], b.Addr...)
	buf.Kind = append(buf.Kind[:0], b.Kind...)
	s.ch <- buf
}

// Access implements mem.Sink.
func (s *feedSink) Access(addr mem.Addr, kind mem.Kind) {
	s.acc.Append(addr, kind)
	if s.acc.Full() {
		s.flush()
	}
}

// Instr implements mem.Sink.
func (s *feedSink) Instr(n uint64) {
	s.acc.AppendInstr(n)
	if s.acc.Full() {
		s.flush()
	}
}

// AccessBatch implements mem.BatchSink. Buffered scalar records flush
// first so stream order is preserved across mixed producers.
func (s *feedSink) AccessBatch(b *mem.Batch) {
	s.flush()
	s.send(b)
}

// flush pushes any scalar-accumulated records out as a batch.
func (s *feedSink) flush() {
	if s.acc.Len() == 0 {
		return
	}
	s.send(s.acc)
	s.acc.Reset()
}

var _ mem.BatchSink = (*feedSink)(nil)
