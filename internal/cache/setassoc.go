package cache

import "repro/internal/mem"

// SetAssoc is a set-associative cache with true LRU replacement
// (per-frame timestamps). With Geometry.Skewed it becomes a
// skewed-associative cache: each way indexes through SkewIndex, and the
// victim on insertion is the least-recently-used frame among the Ways
// candidate frames — the natural LRU generalisation for skewed caches.
type SetAssoc struct {
	geo   Geometry
	lines []mem.Line
	valid []bool
	flags []uint8
	stamp []uint64
	clock uint64
	count int

	// setMask and wayStride are derived from geo once at construction:
	// Lookup runs per simulated reference, and rederiving the mask and
	// frame stride in the loop costs measurable time there.
	setMask   uint64 //emlint:nosnapshot derived from geo at construction
	wayStride int32  //emlint:nosnapshot derived from geo at construction
}

// NewSetAssoc builds a set-associative cache with the given geometry.
func NewSetAssoc(geo Geometry) *SetAssoc {
	if err := geo.Validate(); err != nil {
		//emlint:allowpanic geometries are Validated by machine.Config.Validate and built from paper constants
		panic(err)
	}
	n := geo.Frames()
	return &SetAssoc{
		geo:       geo,
		lines:     make([]mem.Line, n),
		valid:     make([]bool, n),
		flags:     make([]uint8, n),
		stamp:     make([]uint64, n),
		setMask:   uint64(1)<<geo.SetsLog2 - 1,
		wayStride: int32(1) << geo.SetsLog2,
	}
}

// frameOf returns the frame index of way w for line.
func (c *SetAssoc) frameOf(w int, line mem.Line) int32 {
	var set uint32
	if c.geo.Skewed {
		set = SkewIndex(w, line, c.geo.SetsLog2)
	} else {
		set = uint32(uint64(line) & c.setMask)
	}
	return int32(w)<<c.geo.SetsLog2 + int32(set)
}

// Lookup implements Cache.
//
// The two indexing schemes are split into separate loops: the
// non-skewed walk strides a precomputed frame index instead of calling
// frameOf, and the skewed walk keeps the SkewIndex call but avoids the
// per-way branch. This is the single hottest function of the simulator
// (every Access probes up to three cache levels through it).
//
//emlint:hotpath
func (c *SetAssoc) Lookup(line mem.Line) (Handle, bool) {
	if !c.geo.Skewed {
		f := int32(uint64(line) & c.setMask)
		for w := 0; w < c.geo.Ways; w++ {
			if c.valid[f] && c.lines[f] == line {
				return Handle(f), true
			}
			f += c.wayStride
		}
		return -1, false
	}
	for w := 0; w < c.geo.Ways; w++ {
		f := int32(w)<<c.geo.SetsLog2 + int32(SkewIndex(w, line, c.geo.SetsLog2))
		if c.valid[f] && c.lines[f] == line {
			return Handle(f), true
		}
	}
	return -1, false
}

// Touch implements Cache.
func (c *SetAssoc) Touch(h Handle) {
	c.clock++
	c.stamp[h] = c.clock
}

// Access implements Cache.
func (c *SetAssoc) Access(line mem.Line) (Handle, bool) {
	h, ok := c.Lookup(line)
	if ok {
		c.Touch(h)
	}
	return h, ok
}

// Insert implements Cache. line must not already be present.
func (c *SetAssoc) Insert(line mem.Line, flags uint8) (Handle, Victim) {
	// Choose the victim frame: an invalid candidate if any, else the
	// LRU among the Ways candidates.
	best := int32(-1)
	for w := 0; w < c.geo.Ways; w++ {
		f := c.frameOf(w, line)
		if c.valid[f] && c.lines[f] == line {
			//emlint:allowpanic documented precondition: callers Insert only after a miss on the same line
			panic("cache: Insert of resident line")
		}
		if !c.valid[f] {
			if best == -1 || c.valid[best] {
				best = f
			}
			continue
		}
		if best == -1 || (c.valid[best] && c.stamp[f] < c.stamp[best]) {
			best = f
		}
	}
	var v Victim
	if c.valid[best] {
		v = Victim{Line: c.lines[best], Flags: c.flags[best], Valid: true}
	} else {
		c.count++
	}
	c.lines[best] = line
	c.valid[best] = true
	c.flags[best] = flags
	c.clock++
	c.stamp[best] = c.clock
	return Handle(best), v
}

// LineAt implements Cache.
func (c *SetAssoc) LineAt(h Handle) mem.Line { return c.lines[h] }

// Flags implements Cache.
func (c *SetAssoc) Flags(h Handle) uint8 { return c.flags[h] }

// SetFlags implements Cache.
func (c *SetAssoc) SetFlags(h Handle, f uint8) { c.flags[h] = f }

// Invalidate implements Cache.
func (c *SetAssoc) Invalidate(line mem.Line) (uint8, bool) {
	h, ok := c.Lookup(line)
	if !ok {
		return 0, false
	}
	c.valid[h] = false
	c.count--
	return c.flags[h], true
}

// Capacity implements Cache.
func (c *SetAssoc) Capacity() int { return c.geo.Frames() }

// Resident implements Cache.
func (c *SetAssoc) Resident() int { return c.count }

// Geometry returns the cache organisation.
func (c *SetAssoc) Geometry() Geometry { return c.geo }

var _ Cache = (*SetAssoc)(nil)
