package cache

import "repro/internal/mem"

// SetAssoc is a set-associative cache with true LRU replacement
// (per-frame timestamps). With Geometry.Skewed it becomes a
// skewed-associative cache: each way indexes through SkewIndex, and the
// victim on insertion is the least-recently-used frame among the Ways
// candidate frames — the natural LRU generalisation for skewed caches.
type SetAssoc struct {
	geo   Geometry
	lines []mem.Line
	valid []bool
	flags []uint8
	stamp []uint64
	clock uint64
	count int

	// setMask and wayStride are derived from geo once at construction:
	// Lookup runs per simulated reference, and rederiving the mask and
	// frame stride in the loop costs measurable time there.
	setMask   uint64 //emlint:nosnapshot derived from geo at construction
	wayStride int32  //emlint:nosnapshot derived from geo at construction

	// rotAmt and wScramble precompute the per-way constants of SkewIndex
	// (rotation amount and scrambled way constant), so the hot walks can
	// share the per-line decomposition — one golden-ratio multiply per
	// probed line instead of one per way.
	rotAmt    []uint   //emlint:nosnapshot derived from geo at construction
	wScramble []uint64 //emlint:nosnapshot derived from geo at construction

	// probeVictim is the insertion victim chosen during the walk of the
	// most recent Probe miss; probeLine/probeOK guard its validity. They
	// let a miss be converted into an insertion (InsertProbed) without
	// re-running the indexing functions or a second candidate scan — for
	// the skewed L2 that halves the SkewIndex evaluations on the miss
	// path, which profiles as the single hottest computation of the
	// simulator.
	probeVictim int32    //emlint:nosnapshot probe scratch, rebuilt by the next Probe
	probeLine   mem.Line //emlint:nosnapshot probe scratch, rebuilt by the next Probe
	probeOK     bool     //emlint:nosnapshot probe scratch, rebuilt by the next Probe
}

// NewSetAssoc builds a set-associative cache with the given geometry.
func NewSetAssoc(geo Geometry) *SetAssoc {
	if err := geo.Validate(); err != nil {
		//emlint:allowpanic geometries are Validated by machine.Config.Validate and built from paper constants
		panic(err)
	}
	n := geo.Frames()
	c := &SetAssoc{
		geo:       geo,
		lines:     make([]mem.Line, n),
		valid:     make([]bool, n),
		flags:     make([]uint8, n),
		stamp:     make([]uint64, n),
		setMask:   uint64(1)<<geo.SetsLog2 - 1,
		wayStride: int32(1) << geo.SetsLog2,
	}
	if geo.Skewed && geo.SetsLog2 > 0 {
		c.rotAmt = make([]uint, geo.Ways)
		c.wScramble = make([]uint64, geo.Ways)
		for w := 0; w < geo.Ways; w++ {
			c.rotAmt[w] = uint(w) % geo.SetsLog2
			c.wScramble[w] = uint64(w) * 0xbf58476d1ce4e5b9
		}
	}
	return c
}

// skewSet is SkewIndex with the per-line decomposition hoisted out:
// a1/a2 are the two index-bit groups of the line, hiK the golden-ratio
// multiply of its high bits, computed once by the caller and shared by
// every way of the walk. Requires geo.Skewed and SetsLog2 > 0.
//
//emlint:hotpath
func (c *SetAssoc) skewSet(w int, a1, a2, hiK uint64) uint32 {
	if w == 0 {
		return uint32(a1 ^ a2)
	}
	sl := c.geo.SetsLog2
	r := c.rotAmt[w]
	rot := ((a2 << r) | (a2 >> (sl - r))) & c.setMask
	h := (hiK ^ c.wScramble[w]) >> (64 - sl)
	return uint32((a1 ^ rot ^ h) & c.setMask)
}

// frameOf returns the frame index of way w for line.
func (c *SetAssoc) frameOf(w int, line mem.Line) int32 {
	var set uint32
	if c.geo.Skewed {
		set = SkewIndex(w, line, c.geo.SetsLog2)
	} else {
		set = uint32(uint64(line) & c.setMask)
	}
	return int32(w)<<c.geo.SetsLog2 + int32(set)
}

// Lookup implements Cache.
//
// The two indexing schemes are split into separate loops: the
// non-skewed walk strides a precomputed frame index instead of calling
// frameOf, and the skewed walk keeps the SkewIndex call but avoids the
// per-way branch. This is the single hottest function of the simulator
// (every Access probes up to three cache levels through it).
//
//emlint:hotpath
func (c *SetAssoc) Lookup(line mem.Line) (Handle, bool) {
	if !c.geo.Skewed {
		f := int32(uint64(line) & c.setMask)
		for w := 0; w < c.geo.Ways; w++ {
			if c.valid[f] && c.lines[f] == line {
				return Handle(f), true
			}
			f += c.wayStride
		}
		return -1, false
	}
	sl := c.geo.SetsLog2
	if sl == 0 {
		for w := 0; w < c.geo.Ways; w++ {
			if c.valid[w] && c.lines[w] == line {
				return Handle(w), true
			}
		}
		return -1, false
	}
	v := uint64(line)
	a1 := v & c.setMask
	a2 := (v >> sl) & c.setMask
	hiK := (v >> (2 * sl)) * 0x9e3779b97f4a7c15
	for w := 0; w < c.geo.Ways; w++ {
		f := int32(w)<<sl + int32(c.skewSet(w, a1, a2, hiK))
		if c.valid[f] && c.lines[f] == line {
			return Handle(f), true
		}
	}
	return -1, false
}

// Probe is Access (lookup + LRU touch on hit) that additionally selects
// the would-be insertion victim during the walk on a miss — the first
// invalid candidate frame, else the least-recently-used candidate,
// exactly the choice Insert would make. A following InsertProbed of the
// same line then fills that frame directly, with no second scan and no
// re-run of the indexing functions. The recorded victim stays valid
// until the next Probe on this cache; the caller must not mutate this
// cache between the Probe miss and its InsertProbed (interleaved
// operations on *other* caches are fine — see Machine.request).
//
//emlint:hotpath
func (c *SetAssoc) Probe(line mem.Line) (Handle, bool) {
	best := int32(-1)
	bestStamp := ^uint64(0)
	haveInvalid := false
	if !c.geo.Skewed {
		f := int32(uint64(line) & c.setMask)
		for w := 0; w < c.geo.Ways; w++ {
			if c.valid[f] {
				if c.lines[f] == line {
					c.clock++
					c.stamp[f] = c.clock
					return Handle(f), true
				}
				if !haveInvalid && c.stamp[f] < bestStamp {
					best = f
					bestStamp = c.stamp[f]
				}
			} else if !haveInvalid {
				best = f
				haveInvalid = true
			}
			f += c.wayStride
		}
	} else if sl := c.geo.SetsLog2; sl > 0 {
		v := uint64(line)
		a1 := v & c.setMask
		a2 := (v >> sl) & c.setMask
		hiK := (v >> (2 * sl)) * 0x9e3779b97f4a7c15
		for w := 0; w < c.geo.Ways; w++ {
			f := int32(w)<<sl + int32(c.skewSet(w, a1, a2, hiK))
			if c.valid[f] {
				if c.lines[f] == line {
					c.clock++
					c.stamp[f] = c.clock
					return Handle(f), true
				}
				if !haveInvalid && c.stamp[f] < bestStamp {
					best = f
					bestStamp = c.stamp[f]
				}
			} else if !haveInvalid {
				best = f
				haveInvalid = true
			}
		}
	} else {
		// Degenerate single-set skewed cache: every way indexes set 0.
		for w := 0; w < c.geo.Ways; w++ {
			f := int32(w)
			if c.valid[f] {
				if c.lines[f] == line {
					c.clock++
					c.stamp[f] = c.clock
					return Handle(f), true
				}
				if !haveInvalid && c.stamp[f] < bestStamp {
					best = f
					bestStamp = c.stamp[f]
				}
			} else if !haveInvalid {
				best = f
				haveInvalid = true
			}
		}
	}
	c.probeVictim = best
	c.probeLine = line
	c.probeOK = true
	return -1, false
}

// InsertProbed inserts line into the victim frame recorded by an
// immediately preceding Probe miss of the same line. Without a matching
// pending probe it falls back to the self-indexing Insert, so callers
// may use it unconditionally after any miss. The Probe walk has already
// established that line is absent from every candidate frame (and the
// caller guarantees this cache was not mutated since), so the resident-
// line check lives only on the Insert fallback.
//
//emlint:hotpath
func (c *SetAssoc) InsertProbed(line mem.Line, flags uint8) (Handle, Victim) {
	if !c.probeOK || c.probeLine != line {
		return c.Insert(line, flags)
	}
	c.probeOK = false
	return c.fill(c.probeVictim, line, flags)
}

// Touch implements Cache.
func (c *SetAssoc) Touch(h Handle) {
	c.clock++
	c.stamp[h] = c.clock
}

// Access implements Cache.
func (c *SetAssoc) Access(line mem.Line) (Handle, bool) {
	h, ok := c.Lookup(line)
	if ok {
		c.Touch(h)
	}
	return h, ok
}

// Insert implements Cache. line must not already be present.
func (c *SetAssoc) Insert(line mem.Line, flags uint8) (Handle, Victim) {
	// Choose the victim frame: an invalid candidate if any, else the
	// LRU among the Ways candidates.
	best := int32(-1)
	for w := 0; w < c.geo.Ways; w++ {
		f := c.frameOf(w, line)
		if c.valid[f] && c.lines[f] == line {
			//emlint:allowpanic documented precondition: callers Insert only after a miss on the same line
			panic("cache: Insert of resident line")
		}
		if !c.valid[f] {
			if best == -1 || c.valid[best] {
				best = f
			}
			continue
		}
		if best == -1 || (c.valid[best] && c.stamp[f] < c.stamp[best]) {
			best = f
		}
	}
	return c.fill(best, line, flags)
}

// fill writes line into frame best (the victim chosen by Insert or
// InsertProbed) and returns the displaced occupant, if any.
//
//emlint:hotpath
func (c *SetAssoc) fill(best int32, line mem.Line, flags uint8) (Handle, Victim) {
	var v Victim
	if c.valid[best] {
		v = Victim{Line: c.lines[best], Flags: c.flags[best], Valid: true}
	} else {
		c.count++
	}
	c.lines[best] = line
	c.valid[best] = true
	c.flags[best] = flags
	c.clock++
	c.stamp[best] = c.clock
	return Handle(best), v
}

// LineAt implements Cache.
func (c *SetAssoc) LineAt(h Handle) mem.Line { return c.lines[h] }

// Flags implements Cache.
func (c *SetAssoc) Flags(h Handle) uint8 { return c.flags[h] }

// SetFlags implements Cache.
func (c *SetAssoc) SetFlags(h Handle, f uint8) { c.flags[h] = f }

// Invalidate implements Cache.
func (c *SetAssoc) Invalidate(line mem.Line) (uint8, bool) {
	h, ok := c.Lookup(line)
	if !ok {
		return 0, false
	}
	c.valid[h] = false
	c.count--
	return c.flags[h], true
}

// Capacity implements Cache.
func (c *SetAssoc) Capacity() int { return c.geo.Frames() }

// Resident implements Cache.
func (c *SetAssoc) Resident() int { return c.count }

// Geometry returns the cache organisation.
func (c *SetAssoc) Geometry() Geometry { return c.geo }

var _ Cache = (*SetAssoc)(nil)
