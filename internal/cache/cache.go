// Package cache provides the cache models used throughout the
// reproduction: plain set-associative with true LRU, 4-way
// skewed-associative (the paper's L2 and affinity-cache organisation,
// after Bodin & Seznec), and fully-associative LRU (the 16-Kbyte L1
// filters of the paper's §4.1 experiments).
//
// The models track presence and per-line flag bits only — no data. Write
// policies (write-through, write-back, write-allocate) belong to the
// owner (the machine model); a cache here is pure storage with a
// replacement policy, which is what trace-driven miss counting needs.
package cache

import (
	"fmt"

	"repro/internal/mem"
)

// Flag bits stored per line. The machine model uses Modified for the
// paper's migration-mode coherence (§2.1: at most one copy of a line is
// marked modified; inactive copies stay valid with the bit reset).
const (
	// FlagModified marks a dirty line (write-back caches).
	FlagModified uint8 = 1 << iota
)

// Handle identifies a resident line inside one cache. Handles are
// invalidated by Insert and Invalidate calls affecting that frame.
type Handle int32

// Cache is the storage interface shared by all organisations.
type Cache interface {
	// Lookup finds line without touching replacement state.
	Lookup(line mem.Line) (Handle, bool)
	// Touch marks the handle most-recently used.
	Touch(Handle)
	// Access is Lookup followed by Touch on hit.
	Access(line mem.Line) (Handle, bool)
	// Insert places line (which must not be present) and returns the
	// victim, if a valid line was evicted. The new line is MRU. The
	// returned handle addresses the inserted line.
	Insert(line mem.Line, flags uint8) (Handle, Victim)
	// LineAt returns the line a handle addresses.
	LineAt(Handle) mem.Line
	// Flags returns the flag bits of a resident line.
	Flags(Handle) uint8
	// SetFlags overwrites the flag bits of a resident line.
	SetFlags(Handle, uint8)
	// Invalidate removes line if present, returning its flags.
	Invalidate(line mem.Line) (uint8, bool)
	// Capacity returns the number of line frames.
	Capacity() int
	// Resident returns the number of valid lines.
	Resident() int
}

// Victim describes a line evicted by Insert.
type Victim struct {
	Line  mem.Line
	Flags uint8
	Valid bool
}

// Geometry describes a set-associative organisation.
type Geometry struct {
	// Ways is the associativity.
	Ways int
	// SetsLog2 is log2 of the number of sets per way.
	SetsLog2 uint
	// Skewed selects skewed-associative indexing: each way indexes with
	// a different hash of the line address.
	Skewed bool
}

// Frames returns the total number of line frames.
func (g Geometry) Frames() int { return g.Ways << g.SetsLog2 }

// Validate reports whether the geometry is usable.
func (g Geometry) Validate() error {
	if g.Ways < 1 || g.Ways > 64 {
		return fmt.Errorf("cache: ways %d out of [1,64]", g.Ways)
	}
	if g.SetsLog2 > 28 {
		return fmt.Errorf("cache: setsLog2 %d too large", g.SetsLog2)
	}
	return nil
}

// GeometryFor computes a geometry from a byte capacity, line size and
// associativity: capacity/(lineSize*ways) sets. It panics unless the set
// count is a power of two >= 1.
func GeometryFor(capacityBytes int, lineShift uint, ways int, skewed bool) Geometry {
	lines := capacityBytes >> lineShift
	if lines <= 0 || lines%ways != 0 {
		//emlint:allowpanic geometries are built from compile-time paper constants; front ends validate user capacities
		panic(fmt.Sprintf("cache: capacity %dB incompatible with %d ways of %dB lines", capacityBytes, ways, 1<<lineShift))
	}
	sets := lines / ways
	log2 := uint(0)
	for 1<<log2 < sets {
		log2++
	}
	if 1<<log2 != sets {
		//emlint:allowpanic geometries are built from compile-time paper constants; front ends validate user capacities
		panic(fmt.Sprintf("cache: set count %d not a power of two", sets))
	}
	return Geometry{Ways: ways, SetsLog2: log2, Skewed: skewed}
}
