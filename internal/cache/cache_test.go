package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/trace"
)

// TestFullyAssocLRUOrder checks exact LRU behaviour on a tiny cache.
func TestFullyAssocLRUOrder(t *testing.T) {
	c := NewFullyAssoc(3)
	for _, l := range []mem.Line{1, 2, 3} {
		if _, v := c.Insert(l, 0); v.Valid {
			t.Fatalf("unexpected victim %v while filling", v)
		}
	}
	// Touch 1 → LRU order (oldest first): 2, 3, 1.
	h, ok := c.Access(1)
	if !ok {
		t.Fatal("line 1 missing")
	}
	_ = h
	_, v := c.Insert(4, 0)
	if !v.Valid || v.Line != 2 {
		t.Fatalf("victim = %+v, want line 2", v)
	}
	_, v = c.Insert(5, 0)
	if !v.Valid || v.Line != 3 {
		t.Fatalf("victim = %+v, want line 3", v)
	}
	_, v = c.Insert(6, 0)
	if !v.Valid || v.Line != 1 {
		t.Fatalf("victim = %+v, want line 1", v)
	}
}

// TestFullyAssocInvalidate: freed frames are reused before evictions.
func TestFullyAssocInvalidate(t *testing.T) {
	c := NewFullyAssoc(2)
	c.Insert(10, FlagModified)
	c.Insert(20, 0)
	fl, ok := c.Invalidate(10)
	if !ok || fl != FlagModified {
		t.Fatalf("Invalidate(10) = (%d,%v)", fl, ok)
	}
	if _, ok := c.Lookup(10); ok {
		t.Fatal("line 10 still present after invalidate")
	}
	if c.Resident() != 1 {
		t.Fatalf("resident = %d, want 1", c.Resident())
	}
	// Insert must reuse the freed frame: no victim.
	_, v := c.Insert(30, 0)
	if v.Valid {
		t.Fatalf("unexpected victim %+v after invalidate", v)
	}
	// Now full again: next insert evicts LRU (20).
	_, v = c.Insert(40, 0)
	if !v.Valid || v.Line != 20 {
		t.Fatalf("victim = %+v, want line 20", v)
	}
}

// TestSetAssocMapping: a direct-mapped cache must conflict on congruent
// lines and keep non-congruent ones.
func TestSetAssocMapping(t *testing.T) {
	c := NewSetAssoc(Geometry{Ways: 1, SetsLog2: 2}) // 4 sets, direct-mapped
	c.Insert(0, 0)
	c.Insert(1, 0)
	_, v := c.Insert(4, 0) // 4 mod 4 == 0: evicts line 0
	if !v.Valid || v.Line != 0 {
		t.Fatalf("victim = %+v, want line 0", v)
	}
	if _, ok := c.Lookup(1); !ok {
		t.Fatal("line 1 evicted from a different set")
	}
}

// TestSetAssocLRUWithinSet: 2-way set must evict the least recently used
// of the two candidates.
func TestSetAssocLRUWithinSet(t *testing.T) {
	c := NewSetAssoc(Geometry{Ways: 2, SetsLog2: 1}) // 2 sets, 2 ways
	c.Insert(0, 0)                                   // set 0
	c.Insert(2, 0)                                   // set 0
	c.Access(0)                                      // 2 becomes LRU
	_, v := c.Insert(4, 0)
	if !v.Valid || v.Line != 2 {
		t.Fatalf("victim = %+v, want line 2", v)
	}
}

// TestSetAssocInsertResidentPanics documents the contract.
func TestSetAssocInsertResidentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on duplicate insert")
		}
	}()
	c := NewSetAssoc(Geometry{Ways: 2, SetsLog2: 1})
	c.Insert(3, 0)
	c.Insert(3, 0)
}

// TestSkewIndexInRange: property test — indices stay in range and way 0
// differs from other ways often enough to spread conflicts.
func TestSkewIndexInRange(t *testing.T) {
	f := func(line uint64, wayRaw uint8) bool {
		const setsLog2 = 9
		way := int(wayRaw % 4)
		idx := SkewIndex(way, mem.Line(line), setsLog2)
		return idx < 1<<setsLog2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

// TestSkewSpreadsConflicts: lines congruent modulo the set count (a
// power-of-two stride) must map to different sets in at least one other
// way — the motivation for skewed associativity.
func TestSkewSpreadsConflicts(t *testing.T) {
	const setsLog2 = 9
	// 64 lines all congruent in the plain index.
	base := mem.Line(12345)
	spread := 0
	for i := 1; i < 64; i++ {
		l := base + mem.Line(i)<<setsLog2
		differs := false
		for w := 1; w < 4; w++ {
			if SkewIndex(w, l, setsLog2) != SkewIndex(w, base, setsLog2) {
				differs = true
			}
		}
		if differs {
			spread++
		}
	}
	if spread < 60 {
		t.Fatalf("only %d/63 conflicting lines spread by skewing", spread)
	}
}

// TestSkewedBeatsPlainOnPowerOfTwoStride: a skewed cache must suffer far
// fewer misses than a same-geometry plain cache on a power-of-two strided
// stream that thrashes a single set.
func TestSkewedBeatsPlainOnPowerOfTwoStride(t *testing.T) {
	geo := Geometry{Ways: 4, SetsLog2: 7} // 512 frames
	run := func(skewed bool) int {
		g := geo
		g.Skewed = skewed
		c := NewSetAssoc(g)
		misses := 0
		// 16 lines with stride 2^7: all in plain set 0.
		for iter := 0; iter < 200; iter++ {
			for i := 0; i < 16; i++ {
				l := mem.Line(i << 7)
				if _, ok := c.Access(l); !ok {
					misses++
					c.Insert(l, 0)
				}
			}
		}
		return misses
	}
	plain, skewed := run(false), run(true)
	if skewed*4 > plain {
		t.Fatalf("skewing ineffective: plain=%d skewed=%d misses", plain, skewed)
	}
}

// TestCacheMissRatioMatchesCapacity: a cache must hold a working set that
// fits and thrash on one that does not (sanity of the replacement glue).
func TestCacheMissRatioMatchesCapacity(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() Cache
	}{
		{"fullyassoc", func() Cache { return NewFullyAssoc(256) }},
		{"setassoc", func() Cache { return NewSetAssoc(Geometry{Ways: 4, SetsLog2: 6}) }},
		{"skewed", func() Cache { return NewSetAssoc(Geometry{Ways: 4, SetsLog2: 6, Skewed: true}) }},
	} {
		c := tc.mk()
		miss := func(n uint64, laps int) int {
			misses := 0
			g := trace.NewCircular(n)
			for i := 0; i < laps*int(n); i++ {
				l := mem.Line(g.Next())
				if _, ok := c.Access(l); !ok {
					misses++
					c.Insert(l, 0)
				}
			}
			return misses
		}
		// Working set of 128 lines in a 256-frame cache: only cold misses
		// after the first lap (fully-assoc is exact; set-assoc may have a
		// few conflict misses).
		m := miss(128, 10)
		if m > 180 {
			t.Errorf("%s: small working set: %d misses, want ≈128", tc.name, m)
		}
		// Working set of 1024 lines with LRU and circular access: near-100%
		// miss rate for fully-assoc (LRU's pathological case).
		c = tc.mk()
		m = miss(1024, 5)
		if m < 4*1024 {
			t.Errorf("%s: oversized circular working set: %d misses, want ≈5120", tc.name, m)
		}
	}
}

// TestGeometryFor checks the capacity arithmetic for the paper's
// configurations.
func TestGeometryFor(t *testing.T) {
	// 16KB, 64B lines, 4 ways → 64 sets.
	g := GeometryFor(16<<10, 6, 4, false)
	if g.SetsLog2 != 6 || g.Ways != 4 || g.Frames() != 256 {
		t.Fatalf("16KB L1 geometry = %+v", g)
	}
	// 512KB, 64B lines, 4 ways → 2048 sets.
	g = GeometryFor(512<<10, 6, 4, true)
	if g.SetsLog2 != 11 || g.Frames() != 8192 || !g.Skewed {
		t.Fatalf("512KB L2 geometry = %+v", g)
	}
}

// TestFlagsRoundTrip for both implementations.
func TestFlagsRoundTrip(t *testing.T) {
	for _, c := range []Cache{NewFullyAssoc(8), NewSetAssoc(Geometry{Ways: 2, SetsLog2: 2})} {
		h, _ := c.Insert(5, 0)
		c.SetFlags(h, FlagModified)
		if c.Flags(h) != FlagModified {
			t.Fatal("flags lost")
		}
		if c.LineAt(h) != 5 {
			t.Fatal("LineAt mismatch")
		}
		fl, ok := c.Invalidate(5)
		if !ok || fl != FlagModified {
			t.Fatal("invalidate flags mismatch")
		}
	}
}

// TestFullyAssocStress property-checks the map/list consistency under a
// random operation mix against a reference model.
func TestFullyAssocStress(t *testing.T) {
	const capLines = 32
	c := NewFullyAssoc(capLines)
	rng := trace.NewRNG(5)
	resident := map[mem.Line]bool{}
	for i := 0; i < 200_000; i++ {
		l := mem.Line(rng.Uint64n(64))
		switch rng.Uint64n(3) {
		case 0, 1:
			if _, ok := c.Access(l); !ok {
				_, v := c.Insert(l, 0)
				resident[l] = true
				if v.Valid {
					if !resident[v.Line] {
						t.Fatalf("evicted non-resident line %d", v.Line)
					}
					delete(resident, v.Line)
				}
			} else if !resident[l] {
				t.Fatalf("hit on non-resident line %d", l)
			}
		case 2:
			_, ok := c.Invalidate(l)
			if ok != resident[l] {
				t.Fatalf("invalidate(%d) = %v, model says %v", l, ok, resident[l])
			}
			delete(resident, l)
		}
		if c.Resident() != len(resident) {
			t.Fatalf("resident count %d, model %d", c.Resident(), len(resident))
		}
		if c.Resident() > capLines {
			t.Fatal("over capacity")
		}
	}
}
