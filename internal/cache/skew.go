package cache

import "repro/internal/mem"

// SkewIndex computes the set index used by a given way of a
// skewed-associative cache, in the spirit of Bodin & Seznec's skewing
// functions: the index bits and the next-higher address bits are mixed
// with a per-way bit permutation, so two lines conflicting in one way are
// unlikely to conflict in another.
//
// Way 0 XORs the index bits with the next-higher bits (a1 ^ a2); way w
// additionally rotates a2 by w positions and mixes in a multiplicative
// scramble of the remaining high bits, so pathological power-of-two
// strides spread out differently in every way.
func SkewIndex(way int, line mem.Line, setsLog2 uint) uint32 {
	if setsLog2 == 0 {
		return 0
	}
	mask := uint64(1)<<setsLog2 - 1
	v := uint64(line)
	a1 := v & mask
	a2 := (v >> setsLog2) & mask
	if way == 0 {
		return uint32(a1 ^ a2)
	}
	// rotate a2 left by `way` within setsLog2 bits
	r := uint(way) % setsLog2
	rot := ((a2 << r) | (a2 >> (setsLog2 - r))) & mask
	hi := v >> (2 * setsLog2)
	// golden-ratio scramble of high bits, one distinct shift per way
	h := (hi*0x9e3779b97f4a7c15 ^ uint64(way)*0xbf58476d1ce4e5b9) >> (64 - setsLog2)
	return uint32((a1 ^ rot ^ h) & mask)
}
