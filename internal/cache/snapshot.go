package cache

import (
	"fmt"

	"repro/internal/mem"
)

// SetAssocState is the serialisable state of a SetAssoc cache, used by
// the machine checkpoint/resume path. All fields are exported so the
// state survives gob encoding; Geo travels along so a restore into a
// differently-shaped cache is rejected instead of corrupting memory.
type SetAssocState struct {
	Geo   Geometry
	Lines []mem.Line
	Valid []bool
	Flags []uint8
	Stamp []uint64
	Clock uint64
	Count int
}

// State returns a deep copy of the cache's current state.
func (c *SetAssoc) State() SetAssocState {
	return SetAssocState{
		Geo:   c.geo,
		Lines: append([]mem.Line(nil), c.lines...),
		Valid: append([]bool(nil), c.valid...),
		Flags: append([]uint8(nil), c.flags...),
		Stamp: append([]uint64(nil), c.stamp...),
		Clock: c.clock,
		Count: c.count,
	}
}

// SetState restores a previously captured state. The receiving cache
// must have the same geometry as the one that produced the state.
func (c *SetAssoc) SetState(s SetAssocState) error {
	if s.Geo != c.geo {
		return fmt.Errorf("cache: state geometry %+v does not match cache geometry %+v", s.Geo, c.geo)
	}
	n := c.geo.Frames()
	if len(s.Lines) != n || len(s.Valid) != n || len(s.Flags) != n || len(s.Stamp) != n {
		return fmt.Errorf("cache: state arrays sized %d/%d/%d/%d, want %d frames",
			len(s.Lines), len(s.Valid), len(s.Flags), len(s.Stamp), n)
	}
	if s.Count < 0 || s.Count > n {
		return fmt.Errorf("cache: state resident count %d out of [0,%d]", s.Count, n)
	}
	copy(c.lines, s.Lines)
	copy(c.valid, s.Valid)
	copy(c.flags, s.Flags)
	copy(c.stamp, s.Stamp)
	c.clock = s.Clock
	c.count = s.Count
	// A pending Probe describes the pre-restore content; drop it so a
	// stale InsertProbed cannot pick a victim against the old stamps.
	c.probeOK = false
	return nil
}
