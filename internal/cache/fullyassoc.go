package cache

import "repro/internal/mem"

// FullyAssoc is a fully-associative cache with exact LRU replacement,
// implemented as a hash map plus an intrusive doubly-linked LRU list over
// frames, so Lookup, Touch and Insert are all O(1). The paper's §4.1
// experiments use 16-Kbyte fully-associative LRU L1 caches as the stream
// filter in front of the LRU-stack profiler.
type FullyAssoc struct {
	cap   int
	index map[mem.Line]int32

	lines []mem.Line
	flags []uint8
	next  []int32 // toward LRU
	prev  []int32 // toward MRU
	head  int32   // MRU frame, -1 when empty
	tail  int32   // LRU frame, -1 when empty
	used  int
	free  []int32 // frames released by Invalidate
}

// NewFullyAssoc builds a fully-associative LRU cache with the given
// number of line frames.
func NewFullyAssoc(capacityLines int) *FullyAssoc {
	if capacityLines < 1 {
		//emlint:allowpanic capacities come from Validated geometries and paper constants
		panic("cache: fully-associative capacity < 1")
	}
	return &FullyAssoc{
		cap:   capacityLines,
		index: make(map[mem.Line]int32, capacityLines*2),
		lines: make([]mem.Line, capacityLines),
		flags: make([]uint8, capacityLines),
		next:  make([]int32, capacityLines),
		prev:  make([]int32, capacityLines),
		head:  -1,
		tail:  -1,
	}
}

// unlink removes frame f from the LRU list.
func (c *FullyAssoc) unlink(f int32) {
	if c.prev[f] >= 0 {
		c.next[c.prev[f]] = c.next[f]
	} else {
		c.head = c.next[f]
	}
	if c.next[f] >= 0 {
		c.prev[c.next[f]] = c.prev[f]
	} else {
		c.tail = c.prev[f]
	}
}

// pushFront makes frame f the MRU.
func (c *FullyAssoc) pushFront(f int32) {
	c.prev[f] = -1
	c.next[f] = c.head
	if c.head >= 0 {
		c.prev[c.head] = f
	}
	c.head = f
	if c.tail < 0 {
		c.tail = f
	}
}

// Lookup implements Cache.
func (c *FullyAssoc) Lookup(line mem.Line) (Handle, bool) {
	f, ok := c.index[line]
	if !ok {
		return -1, false
	}
	return Handle(f), true
}

// Touch implements Cache.
func (c *FullyAssoc) Touch(h Handle) {
	f := int32(h)
	if c.head == f {
		return
	}
	c.unlink(f)
	c.pushFront(f)
}

// Access implements Cache.
func (c *FullyAssoc) Access(line mem.Line) (Handle, bool) {
	h, ok := c.Lookup(line)
	if ok {
		c.Touch(h)
	}
	return h, ok
}

// Insert implements Cache. line must not already be present.
func (c *FullyAssoc) Insert(line mem.Line, flags uint8) (Handle, Victim) {
	if _, ok := c.index[line]; ok {
		//emlint:allowpanic documented precondition: callers Insert only after a miss on the same line
		panic("cache: Insert of resident line")
	}
	var f int32
	var v Victim
	switch {
	case len(c.free) > 0:
		f = c.free[len(c.free)-1]
		c.free = c.free[:len(c.free)-1]
	case c.used < c.cap:
		f = int32(c.used)
		c.used++
	default:
		f = c.tail
		v = Victim{Line: c.lines[f], Flags: c.flags[f], Valid: true}
		delete(c.index, c.lines[f])
		c.unlink(f)
	}
	c.lines[f] = line
	c.flags[f] = flags
	c.index[line] = f
	c.pushFront(f)
	return Handle(f), v
}

// LineAt implements Cache.
func (c *FullyAssoc) LineAt(h Handle) mem.Line { return c.lines[h] }

// Flags implements Cache.
func (c *FullyAssoc) Flags(h Handle) uint8 { return c.flags[h] }

// SetFlags implements Cache.
func (c *FullyAssoc) SetFlags(h Handle, f uint8) { c.flags[h] = f }

// Invalidate implements Cache. The freed frame is recycled by a future
// Insert before any valid line is evicted.
func (c *FullyAssoc) Invalidate(line mem.Line) (uint8, bool) {
	f, ok := c.index[line]
	if !ok {
		return 0, false
	}
	fl := c.flags[f]
	delete(c.index, line)
	c.unlink(f)
	c.free = append(c.free, f)
	return fl, true
}

// Capacity implements Cache.
func (c *FullyAssoc) Capacity() int { return c.cap }

// Resident implements Cache.
func (c *FullyAssoc) Resident() int { return len(c.index) }

var _ Cache = (*FullyAssoc)(nil)
