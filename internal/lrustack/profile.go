package lrustack

import "repro/internal/mem"

// Depth semantics: Stack.Ref returns the number of OTHER distinct lines
// referenced since the previous reference to the same line (0 when the
// line was the immediately preceding reference; Infinite on first
// touch). A fully-associative LRU cache of capacity x lines therefore
// MISSES exactly when depth >= x.

// Profile accumulates a stack-distance profile over a set of capacity
// thresholds, yielding the paper's p(x): the fraction of references
// whose stack depth exceeds each cache size.
type Profile struct {
	// Thresholds are capacities in lines, ascending.
	Thresholds []int64
	// Misses[i] counts references with depth >= Thresholds[i].
	Misses []uint64
	// Cold counts first-touch (infinite-depth) references, included in
	// every Misses[i].
	Cold uint64
	// Refs counts all references.
	Refs uint64
}

// NewProfile builds a profile over the given ascending capacities
// (in lines).
func NewProfile(thresholds []int64) *Profile {
	for i := 1; i < len(thresholds); i++ {
		if thresholds[i] <= thresholds[i-1] {
			//emlint:allowpanic threshold grids are compile-time experiment constants (see report/fig45.go)
			panic("lrustack: thresholds must ascend")
		}
	}
	return &Profile{
		Thresholds: append([]int64(nil), thresholds...),
		Misses:     make([]uint64, len(thresholds)),
	}
}

// PaperThresholds returns the capacities plotted in the paper's Figures
// 4 and 5 — 16KB to 16MB in powers of 4 plus the intermediate powers of
// 2 — expressed in 64-byte lines: 16KB=256 lines … 16MB=256k lines.
func PaperThresholds(lineShift uint) []int64 {
	var t []int64
	for bytes := int64(16 << 10); bytes <= 16<<20; bytes *= 2 {
		t = append(t, bytes>>lineShift)
	}
	return t
}

// Record adds one observed depth.
func (p *Profile) Record(depth int64) {
	p.Refs++
	if depth == Infinite {
		p.Cold++
		for i := range p.Misses {
			p.Misses[i]++
		}
		return
	}
	// Thresholds ascend; find the first threshold > depth. All
	// thresholds <= depth are misses.
	for i := len(p.Thresholds) - 1; i >= 0; i-- {
		if depth >= p.Thresholds[i] {
			for j := 0; j <= i; j++ {
				p.Misses[j]++
			}
			break
		}
	}
}

// Frac returns p(x) for threshold index i: the fraction of references
// with depth >= Thresholds[i].
func (p *Profile) Frac(i int) float64 {
	if p.Refs == 0 {
		return 0
	}
	return float64(p.Misses[i]) / float64(p.Refs)
}

// Reset zeroes the accumulated counts, keeping the threshold grid. The
// interval sampler uses it to carve one long reference stream into
// per-interval profiles over a single persistent Stack: the stack keeps
// the cross-interval reuse history while each interval's counts start
// fresh.
func (p *Profile) Reset() {
	for i := range p.Misses {
		p.Misses[i] = 0
	}
	p.Cold = 0
	p.Refs = 0
}

// Signature exports the profile as a normalized working-set fingerprint:
// one miss fraction per threshold followed by the cold (first-touch)
// fraction. Two intervals with similar signatures exercise the cache
// hierarchy similarly at every capacity in the grid, which is what makes
// the vector a clustering feature for interval sampling. A profile with
// no references yields the all-zero vector.
func (p *Profile) Signature() []float64 {
	sig := make([]float64, len(p.Thresholds)+1)
	if p.Refs == 0 {
		return sig
	}
	for i := range p.Thresholds {
		sig[i] = float64(p.Misses[i]) / float64(p.Refs)
	}
	sig[len(p.Thresholds)] = float64(p.Cold) / float64(p.Refs)
	return sig
}

// MultiStack routes each reference to one of k stacks (the §4.1 "split"
// experiment: the 4-way splitter chooses the stack) and accumulates one
// global profile across all of them.
type MultiStack struct {
	Stacks  []*Stack
	Profile *Profile
}

// NewMultiStack builds k unbounded stacks sharing one profile.
func NewMultiStack(k int, thresholds []int64) *MultiStack {
	return NewMultiStackLimited(k, thresholds, 0)
}

// NewMultiStackLimited builds k stacks sharing one profile, each capped
// at perStack live lines (<= 0 = unbounded). See NewLimited for the
// accuracy guarantee: thresholds <= perStack are exact.
func NewMultiStackLimited(k int, thresholds []int64, perStack int64) *MultiStack {
	ms := &MultiStack{Profile: NewProfile(thresholds)}
	for i := 0; i < k; i++ {
		ms.Stacks = append(ms.Stacks, NewLimited(perStack))
	}
	return ms
}

// Dropped returns the total lines evicted across all stacks.
func (m *MultiStack) Dropped() uint64 {
	var d uint64
	for _, s := range m.Stacks {
		d += s.Dropped()
	}
	return d
}

// Ref records a reference to line on stack k and returns its depth
// within that stack.
func (m *MultiStack) Ref(k int, line mem.Line) int64 {
	d := m.Stacks[k].Ref(line)
	m.Profile.Record(d)
	return d
}
