package lrustack

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/trace"
)

// naiveLimited is the O(n) reference model for the capped stack: a
// move-to-front list that drops its tail past the cap.
type naiveLimited struct {
	order   []mem.Line
	cap     int
	dropped uint64
}

func (n *naiveLimited) ref(line mem.Line) int64 {
	for i, l := range n.order {
		if l == line {
			copy(n.order[1:i+1], n.order[:i])
			n.order[0] = line
			return int64(i)
		}
	}
	n.order = append([]mem.Line{line}, n.order...)
	if len(n.order) > n.cap {
		n.order = n.order[:n.cap]
		n.dropped++
	}
	return Infinite
}

// TestLimitedMatchesNaive cross-checks the capped Fenwick stack against
// the move-to-front model on a random stream whose alphabet (300) far
// exceeds the cap (50), forcing heavy eviction; 50k refs with live
// capped at 50 also force many compaction cycles (used grows past the
// tree repeatedly while live stays small).
func TestLimitedMatchesNaive(t *testing.T) {
	rng := trace.NewRNG(21)
	s := NewLimited(50)
	n := &naiveLimited{cap: 50}
	for i := 0; i < 50_000; i++ {
		line := mem.Line(rng.Uint64n(300))
		got, want := s.Ref(line), n.ref(line)
		if got != want {
			t.Fatalf("ref %d line %d: depth %d, want %d", i, line, got, want)
		}
	}
	if s.Live() != int64(len(n.order)) {
		t.Fatalf("live = %d, want %d", s.Live(), len(n.order))
	}
	if s.Live() > 50 {
		t.Fatalf("live %d exceeds cap", s.Live())
	}
	if s.Dropped() != n.dropped || s.Dropped() == 0 {
		t.Fatalf("dropped = %d, want %d (nonzero)", s.Dropped(), n.dropped)
	}
}

// TestLimitedEvictionOrder: with cap 2, the third distinct line must
// evict the least recently used one, and re-referencing revives a line
// as a fresh first touch.
func TestLimitedEvictionOrder(t *testing.T) {
	s := NewLimited(2)
	s.Ref(1) // stack: [1]
	s.Ref(2) // stack: [2 1]
	s.Ref(3) // evicts 1 → [3 2]
	if s.Dropped() != 1 || s.Live() != 2 {
		t.Fatalf("after third insert: dropped=%d live=%d", s.Dropped(), s.Live())
	}
	if d := s.Ref(2); d != 1 { // [2 3], 2 survived
		t.Fatalf("surviving line depth = %d, want 1", d)
	}
	if d := s.Ref(1); d != Infinite { // evicted → cold again; evicts 3
		t.Fatalf("evicted line depth = %d, want Infinite", d)
	}
	if d := s.Ref(3); d != Infinite {
		t.Fatalf("line 3 should have been evicted, depth = %d", d)
	}
	if s.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", s.Dropped())
	}
}

// TestLimitedExactBelowCap: the accuracy guarantee — with the cap at or
// above the largest threshold, the capped profile's miss counts equal
// the unbounded profile's at EVERY threshold; only the cold attribution
// differs.
func TestLimitedExactBelowCap(t *testing.T) {
	thresholds := []int64{16, 64, 256}
	full, capped := New(), NewLimited(256)
	pf, pc := NewProfile(thresholds), NewProfile(thresholds)

	rng := trace.NewRNG(31)
	for i := 0; i < 200_000; i++ {
		// hot set + cold tail, as in TestProfileMatchesCacheSimulation
		var line mem.Line
		if rng.Uint64n(10) < 8 {
			line = mem.Line(rng.Uint64n(200))
		} else {
			line = mem.Line(1000 + rng.Uint64n(100_000))
		}
		pf.Record(full.Ref(line))
		pc.Record(capped.Ref(line))
	}
	if capped.Dropped() == 0 {
		t.Fatal("cap never exercised")
	}
	for i := range thresholds {
		if pf.Misses[i] != pc.Misses[i] {
			t.Fatalf("threshold %d: capped misses %d, unbounded %d",
				thresholds[i], pc.Misses[i], pf.Misses[i])
		}
	}
	if pc.Cold < pf.Cold {
		t.Fatalf("capped cold %d < unbounded cold %d", pc.Cold, pf.Cold)
	}
	// Bookkeeping: every capped first-touch either stays live or was
	// evicted.
	if uint64(capped.Live())+capped.Dropped() != pc.Cold {
		t.Fatalf("live %d + dropped %d != cold %d", capped.Live(), capped.Dropped(), pc.Cold)
	}
}

// TestLimitedUnboundedBelowLimit: a stream that never exceeds the cap
// behaves identically to the unbounded stack and drops nothing.
func TestLimitedUnboundedBelowLimit(t *testing.T) {
	full, capped := New(), NewLimited(1000)
	rng := trace.NewRNG(41)
	for i := 0; i < 100_000; i++ {
		line := mem.Line(rng.Uint64n(1000))
		if df, dc := full.Ref(line), capped.Ref(line); df != dc {
			t.Fatalf("ref %d: capped depth %d, unbounded %d", i, dc, df)
		}
	}
	if capped.Dropped() != 0 {
		t.Fatalf("dropped %d entries without exceeding the cap", capped.Dropped())
	}
}

// TestMultiStackLimited: per-stack caps and the aggregated Dropped.
func TestMultiStackLimited(t *testing.T) {
	ms := NewMultiStackLimited(4, []int64{8}, 16)
	rng := trace.NewRNG(51)
	for i := 0; i < 40_000; i++ {
		ms.Ref(int(rng.Uint64n(4)), mem.Line(rng.Uint64n(500)))
	}
	var dropped uint64
	for k, s := range ms.Stacks {
		if s.Live() > 16 {
			t.Fatalf("stack %d live %d exceeds cap", k, s.Live())
		}
		dropped += s.Dropped()
	}
	if dropped == 0 || ms.Dropped() != dropped {
		t.Fatalf("Dropped() = %d, want %d (nonzero)", ms.Dropped(), dropped)
	}
}
