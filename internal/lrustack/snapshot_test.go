package lrustack

import (
	"testing"

	"repro/internal/mem"
)

// drive feeds a deterministic mixed stream: a cyclic sweep with a
// re-reference burst so depths span hits, deep hits and first touches.
func drive(s *Stack, n int) []int64 {
	depths := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		line := mem.Line(i % 97)
		if i%13 == 0 {
			line = mem.Line(i % 7)
		}
		depths = append(depths, s.Ref(line))
	}
	return depths
}

// TestStateRoundTrip: a restored stack reports the same depths as the
// original for the remainder of the stream, for both regimes.
func TestStateRoundTrip(t *testing.T) {
	for name, mk := range map[string]func() *Stack{
		"unbounded": New,
		"limited":   func() *Stack { return NewLimited(32) },
	} {
		t.Run(name, func(t *testing.T) {
			orig := mk()
			drive(orig, 500)
			st := orig.State()

			fresh := mk()
			if err := fresh.SetState(st); err != nil {
				t.Fatalf("SetState: %v", err)
			}
			if fresh.Live() != orig.Live() || fresh.Dropped() != orig.Dropped() {
				t.Fatalf("restored live/dropped %d/%d, want %d/%d",
					fresh.Live(), fresh.Dropped(), orig.Live(), orig.Dropped())
			}
			a := drive(orig, 300)
			b := drive(fresh, 300)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("depth diverges at ref %d: %d vs %d", i, a[i], b[i])
				}
			}
		})
	}
}

// TestStateDeterministic: two identically driven stacks serialise to
// identical states.
func TestStateDeterministic(t *testing.T) {
	s1, s2 := New(), New()
	drive(s1, 400)
	drive(s2, 400)
	a, b := s1.State(), s2.State()
	if len(a.Lines) != len(b.Lines) {
		t.Fatalf("state sizes differ: %d vs %d", len(a.Lines), len(b.Lines))
	}
	for i := range a.Lines {
		if a.Lines[i] != b.Lines[i] {
			t.Fatalf("state order diverges at %d: line %d vs %d", i, a.Lines[i], b.Lines[i])
		}
	}
}

// TestSetStateRejects: shape mismatches are errors, not corruption.
func TestSetStateRejects(t *testing.T) {
	s := NewLimited(4)
	if err := s.SetState(StackState{Limit: 8}); err == nil {
		t.Fatal("limit mismatch accepted")
	}
	if err := s.SetState(StackState{Limit: 4, Lines: []mem.Line{1, 2, 3, 4, 5}}); err == nil {
		t.Fatal("over-limit state accepted")
	}
	if err := s.SetState(StackState{Limit: 4, Lines: []mem.Line{1, 1}}); err == nil {
		t.Fatal("duplicate line accepted")
	}
}
