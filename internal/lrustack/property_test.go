package lrustack

import (
	"fmt"
	"testing"

	"repro/internal/mem"
	"repro/internal/trace"
)

// naiveModel is the O(n) reference model for the full Stack API,
// including snapshot/restore: a move-to-front list (most recent first)
// with tail-drop past the cap. Depth of a reference is its index in the
// list; State mirrors StackState (LRU first).
type naiveModel struct {
	order   []mem.Line
	cap     int64
	dropped uint64
}

func (n *naiveModel) ref(line mem.Line) int64 {
	for i, l := range n.order {
		if l == line {
			copy(n.order[1:i+1], n.order[:i])
			n.order[0] = line
			return int64(i)
		}
	}
	n.order = append([]mem.Line{line}, n.order...)
	if n.cap > 0 && int64(len(n.order)) > n.cap {
		n.order = n.order[:n.cap]
		n.dropped++
	}
	return Infinite
}

func (n *naiveModel) state() StackState {
	lines := make([]mem.Line, len(n.order))
	for i, l := range n.order {
		lines[len(lines)-1-i] = l // model is MRU-first, StackState is LRU-first
	}
	return StackState{Lines: lines, Limit: n.cap, Dropped: n.dropped}
}

func (n *naiveModel) setState(st StackState) {
	n.order = make([]mem.Line, len(st.Lines))
	for i, l := range st.Lines {
		n.order[len(n.order)-1-i] = l
	}
	n.dropped = st.Dropped
}

// checkAgainstModel asserts every externally observable property of the
// stack matches the model: live count, drop accounting, and the full
// recency order via State.
func checkAgainstModel(t *testing.T, step int, op string, s *Stack, n *naiveModel) {
	t.Helper()
	if s.Live() != int64(len(n.order)) {
		t.Fatalf("step %d (%s): live = %d, model %d", step, op, s.Live(), len(n.order))
	}
	if s.Dropped() != n.dropped {
		t.Fatalf("step %d (%s): dropped = %d, model %d", step, op, s.Dropped(), n.dropped)
	}
	got, want := s.State(), n.state()
	if len(got.Lines) != len(want.Lines) {
		t.Fatalf("step %d (%s): state holds %d lines, model %d", step, op, len(got.Lines), len(want.Lines))
	}
	for i := range got.Lines {
		if got.Lines[i] != want.Lines[i] {
			t.Fatalf("step %d (%s): recency order diverged at %d:\n stack %v\n model %v",
				step, op, i, got.Lines, want.Lines)
		}
	}
}

// TestStackPropertyOpSequences drives Stack and the naive model through
// seeded random operation sequences — references, snapshots, restores
// (both in-place and into a fresh stack) — and demands identical depth
// results, recency order, live counts and drop accounting at every
// step. Covers the unbounded stack and caps that force eviction plus
// compaction churn.
func TestStackPropertyOpSequences(t *testing.T) {
	cases := []struct {
		limit    int64
		alphabet uint64
		seed     uint64
	}{
		{0, 40, 101},    // unbounded, small alphabet → heavy compaction
		{0, 5000, 102},  // unbounded, mostly first touches
		{8, 40, 103},    // tiny cap → constant eviction
		{64, 200, 104},  // cap between alphabet extremes
		{300, 200, 105}, // cap never reached: must behave as unbounded
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("limit=%d/alphabet=%d", tc.limit, tc.alphabet), func(t *testing.T) {
			rng := trace.NewRNG(tc.seed)
			s := NewLimited(tc.limit)
			n := &naiveModel{cap: tc.limit}
			var stash []StackState // snapshots taken mid-run, restored later

			const steps = 6000
			for i := 0; i < steps; i++ {
				switch op := rng.Uint64n(100); {
				case op < 90: // reference
					line := mem.Line(rng.Uint64n(tc.alphabet))
					got, want := s.Ref(line), n.ref(line)
					if got != want {
						t.Fatalf("step %d: Ref(%d) depth %d, model %d", i, line, got, want)
					}
					if i%97 == 0 {
						checkAgainstModel(t, i, "ref", s, n)
					}
				case op < 95: // snapshot: stash it and verify it matches the model's
					st := s.State()
					want := n.state()
					if len(st.Lines) != len(want.Lines) || st.Dropped != want.Dropped || st.Limit != tc.limit {
						t.Fatalf("step %d: snapshot %+v, model %+v", i, st, want)
					}
					stash = append(stash, st)
				case op < 98 && len(stash) > 0: // restore in place
					st := stash[rng.Uint64n(uint64(len(stash)))]
					if err := s.SetState(st); err != nil {
						t.Fatalf("step %d: SetState: %v", i, err)
					}
					n.setState(st)
					checkAgainstModel(t, i, "restore", s, n)
				case len(stash) > 0: // restore into a fresh stack and continue on it
					st := stash[rng.Uint64n(uint64(len(stash)))]
					fresh := NewLimited(tc.limit)
					if err := fresh.SetState(st); err != nil {
						t.Fatalf("step %d: fresh SetState: %v", i, err)
					}
					s = fresh
					n.setState(st)
					checkAgainstModel(t, i, "fresh-restore", s, n)
				}
			}
			checkAgainstModel(t, steps, "final", s, n)
			if tc.limit > 0 && s.Live() > tc.limit {
				t.Fatalf("live %d exceeds cap %d", s.Live(), tc.limit)
			}
			if tc.limit == 8 && s.Dropped() == 0 {
				t.Fatal("tiny cap produced no drops; op mix is not exercising eviction")
			}
		})
	}
}

// TestStackPropertyDepthProfile replays the same seeded op sequence
// twice — once straight through, once snapshotting halfway and
// finishing on a restored fresh stack — and demands the depth profile
// of the second half be identical. Snapshot/restore must be invisible
// to every subsequent depth query.
func TestStackPropertyDepthProfile(t *testing.T) {
	for _, limit := range []int64{0, 32} {
		t.Run(fmt.Sprintf("limit=%d", limit), func(t *testing.T) {
			const half, total = 3000, 6000
			mkLines := func() []mem.Line {
				rng := trace.NewRNG(7)
				lines := make([]mem.Line, total)
				for i := range lines {
					lines[i] = mem.Line(rng.Uint64n(120))
				}
				return lines
			}
			lines := mkLines()

			ref := NewLimited(limit)
			var refDepths []int64
			for _, l := range lines {
				refDepths = append(refDepths, ref.Ref(l))
			}

			s := NewLimited(limit)
			for _, l := range lines[:half] {
				s.Ref(l)
			}
			st := s.State()
			resumed := NewLimited(limit)
			if err := resumed.SetState(st); err != nil {
				t.Fatal(err)
			}
			for i, l := range lines[half:] {
				if got := resumed.Ref(l); got != refDepths[half+i] {
					t.Fatalf("ref %d after restore: depth %d, want %d", half+i, got, refDepths[half+i])
				}
			}
			if resumed.Dropped() != ref.Dropped() || resumed.Live() != ref.Live() {
				t.Fatalf("after restore: live %d dropped %d, reference live %d dropped %d",
					resumed.Live(), resumed.Dropped(), ref.Live(), ref.Dropped())
			}
		})
	}
}
