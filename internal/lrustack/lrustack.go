// Package lrustack implements Mattson's LRU stack-distance profiler
// (Mattson et al., "Evaluation techniques for storage hierarchies",
// 1970), the tool behind the paper's §4.1 experiments: a single pass
// over a reference stream yields, for every cache size x at once, the
// miss ratio of a fully-associative LRU cache of that size — the curve
// p(x) plotted in the paper's Figures 4 and 5.
//
// The classical stack is a move-to-front list with O(depth) search. We
// use the standard time-slot/Fenwick-tree reformulation: each line
// holds the (monotonically increasing) time slot of its last reference;
// the stack depth of a reference equals the number of lines whose slot
// is more recent — a prefix-sum query, O(log n). Slots are compacted
// when the slot array outgrows twice the number of live lines, keeping
// memory proportional to the distinct-line count.
package lrustack

import (
	"sort"

	"repro/internal/mem"
)

// Infinite is the depth reported for a first-touch reference (the paper:
// "a reference which is encountered for the first time has an infinite
// LRU stack depth").
const Infinite = int64(^uint64(0) >> 1)

// Stack is an LRU stack with O(log n) depth queries. By default it is
// unbounded — it tracks every distinct line ever referenced; NewLimited
// caps the live-line count with LRU eviction.
type Stack struct {
	slot map[mem.Line]int64 // line → time slot of last reference
	// Fenwick tree over slots, 1-based.
	//emlint:nosnapshot rebuilt from slot by SetState
	tree []int64
	// used is the next free slot (number of slots consumed).
	//emlint:nosnapshot slots are re-densified to 0..live-1 on restore
	used int64
	// live is the number of live (distinct) lines.
	//emlint:nosnapshot derived: len(slot)
	live int64
	// scratch is reused during compaction.
	//emlint:nosnapshot scratch, no cross-call state
	scratch []mem.Line
	limit   int64 // max live lines (0 = unbounded)
	// rev maps slot → line, maintained only when limited.
	//emlint:nosnapshot rebuilt from slot by SetState
	rev     map[int64]mem.Line
	dropped uint64 // lines evicted by the cap
}

// New returns an empty unbounded stack.
func New() *Stack {
	return &Stack{
		slot: make(map[mem.Line]int64),
		tree: make([]int64, 1024),
	}
}

// NewLimited returns a stack that never tracks more than limit distinct
// lines: when a first touch would exceed the cap, the least recently
// used line is evicted and counted in Dropped, and its next reference
// reads as a first touch (Infinite) again. limit <= 0 means unbounded.
//
// The capped stack stays EXACT for every threshold <= limit: an evicted
// line had depth >= limit at eviction, and depth only grows until the
// line is re-referenced, so the unbounded stack would also report a
// miss at every threshold <= limit for that reference. Only the
// cold-versus-deep-miss attribution above the cap is approximated.
func NewLimited(limit int64) *Stack {
	s := New()
	if limit > 0 {
		s.limit = limit
		s.rev = make(map[int64]mem.Line)
	}
	return s
}

// add updates the Fenwick tree at slot i (0-based) by delta.
func (s *Stack) add(i int64, delta int64) {
	for j := i + 1; j <= int64(len(s.tree)-1); j += j & (-j) {
		s.tree[j] += delta
	}
}

// sum returns the count of live slots in [0, i] (0-based inclusive).
func (s *Stack) sum(i int64) int64 {
	var t int64
	for j := i + 1; j > 0; j -= j & (-j) {
		t += s.tree[j]
	}
	return t
}

// grow ensures capacity for one more slot, compacting or resizing.
func (s *Stack) grow() {
	if s.used+1 < int64(len(s.tree)) {
		return
	}
	if s.used >= 2*s.live && s.live > 0 {
		s.compact()
		return
	}
	// Double the tree, rebuilding (O(n)); amortised O(log n) per ref.
	old := s.tree
	s.tree = make([]int64, 2*len(old))
	s.rebuild()
}

// compact reassigns dense slots preserving order, then rebuilds.
func (s *Stack) compact() {
	// Collect lines ordered by slot. Counting them in slot order via a
	// scratch array indexed by old slot would need O(used) memory, which
	// we already have in the tree; simplest is sort-free bucketing:
	lines := s.scratch[:0]
	for l := range s.slot {
		lines = append(lines, l)
	}
	// insertion-free ordering: sort by slot using a simple slice sort.
	sortBySlot(lines, s.slot)
	s.scratch = lines[:0]
	for i, l := range lines {
		s.slot[l] = int64(i)
	}
	if s.rev != nil {
		clear(s.rev)
		for i, l := range lines {
			s.rev[int64(i)] = l
		}
	}
	s.used = int64(len(lines))
	s.rebuild()
}

// rebuild zeroes and repopulates the Fenwick tree from the slot map.
func (s *Stack) rebuild() {
	for i := range s.tree {
		s.tree[i] = 0
	}
	for _, sl := range s.slot {
		s.add(sl, 1)
	}
}

// sortBySlot sorts lines ascending by their last-reference slot.
// Compaction is rare (amortised over ≥ live references), so stdlib sort
// is fine here.
func sortBySlot(lines []mem.Line, slot map[mem.Line]int64) {
	sort.Slice(lines, func(i, j int) bool { return slot[lines[i]] < slot[lines[j]] })
}

// Ref records a reference to line and returns its stack depth BEFORE the
// reference: the number of distinct lines referenced since the previous
// reference to line, or Infinite on first touch. A depth of 0 means line
// was also the immediately preceding reference.
func (s *Stack) Ref(line mem.Line) int64 {
	old, seen := s.slot[line]
	var depth int64
	if seen {
		// lines with slot strictly greater than old
		depth = s.live - s.sum(old)
		s.add(old, -1)
		// Remove the stale mapping before grow(): a rebuild/compaction
		// inside grow() repopulates the tree from the slot map and must
		// not resurrect the old slot.
		delete(s.slot, line)
		if s.rev != nil {
			delete(s.rev, old)
		}
	} else {
		depth = Infinite
		s.live++
	}
	s.grow()
	s.slot[line] = s.used
	s.add(s.used, 1)
	if s.rev != nil {
		s.rev[s.used] = line
	}
	s.used++
	if s.limit > 0 && s.live > s.limit {
		s.evict()
	}
	return depth
}

// evict removes the least recently used live line. Only called when
// live > limit >= 1, so the victim is never the line just inserted
// (which holds the highest slot while at least one other line is live).
func (s *Stack) evict() {
	sl := s.lowestLive()
	line, ok := s.rev[sl]
	if !ok {
		//emlint:allowpanic internal invariant: rev mirrors slot whenever limit > 0
		panic("lrustack: reverse slot map out of sync")
	}
	s.add(sl, -1)
	delete(s.slot, line)
	delete(s.rev, sl)
	s.live--
	s.dropped++
}

// lowestLive returns the 0-based slot of the oldest live line — the
// smallest slot whose prefix count reaches 1 — via the standard Fenwick
// binary descend: walk power-of-two strides, keeping the largest tree
// index whose cumulative sum is still short of the target.
func (s *Stack) lowestLive() int64 {
	var pos int64
	rem := int64(1)
	mask := int64(1)
	for mask*2 < int64(len(s.tree)) {
		mask *= 2
	}
	for ; mask > 0; mask >>= 1 {
		if next := pos + mask; next < int64(len(s.tree)) && s.tree[next] < rem {
			rem -= s.tree[next]
			pos = next
		}
	}
	return pos
}

// Live returns the number of live (distinct, not evicted) lines.
func (s *Stack) Live() int64 { return s.live }

// Limit returns the live-line cap (0 = unbounded).
func (s *Stack) Limit() int64 { return s.limit }

// Dropped returns the number of lines evicted by the cap.
func (s *Stack) Dropped() uint64 { return s.dropped }
