package lrustack

import (
	"testing"
	"testing/quick"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/trace"
)

// naiveDepth is an O(n) reference model: a move-to-front list.
type naiveDepth struct {
	order []mem.Line
}

func (n *naiveDepth) ref(line mem.Line) int64 {
	for i, l := range n.order {
		if l == line {
			copy(n.order[1:i+1], n.order[:i])
			n.order[0] = line
			return int64(i)
		}
	}
	n.order = append([]mem.Line{line}, n.order...)
	return Infinite
}

// TestStackMatchesNaive cross-checks the Fenwick implementation against
// the move-to-front model on random streams.
func TestStackMatchesNaive(t *testing.T) {
	rng := trace.NewRNG(11)
	s := New()
	n := &naiveDepth{}
	for i := 0; i < 50_000; i++ {
		line := mem.Line(rng.Uint64n(300))
		got, want := s.Ref(line), n.ref(line)
		if got != want {
			t.Fatalf("ref %d line %d: depth %d, want %d", i, line, got, want)
		}
	}
	if s.Live() != int64(len(n.order)) {
		t.Fatalf("live = %d, want %d", s.Live(), len(n.order))
	}
}

// TestStackMatchesNaiveSmallAlphabet forces heavy compaction.
func TestStackMatchesNaiveSmallAlphabet(t *testing.T) {
	rng := trace.NewRNG(12)
	s := New()
	n := &naiveDepth{}
	for i := 0; i < 100_000; i++ {
		line := mem.Line(rng.Uint64n(8))
		if got, want := s.Ref(line), n.ref(line); got != want {
			t.Fatalf("ref %d: depth %d, want %d", i, got, want)
		}
	}
}

// TestStackSequential: depth of a repeated circular sweep over N lines
// is N−1 for every non-cold reference.
func TestStackSequential(t *testing.T) {
	s := New()
	const n = 1000
	g := trace.NewCircular(n)
	for i := 0; i < n; i++ {
		if d := s.Ref(mem.Line(g.Next())); d != Infinite {
			t.Fatalf("cold ref %d depth %d", i, d)
		}
	}
	for i := 0; i < 5*n; i++ {
		if d := s.Ref(mem.Line(g.Next())); d != n-1 {
			t.Fatalf("warm ref %d depth %d, want %d", i, d, n-1)
		}
	}
}

// TestStackImmediateRepeat: re-referencing the same line has depth 0.
func TestStackImmediateRepeat(t *testing.T) {
	s := New()
	s.Ref(42)
	for i := 0; i < 10; i++ {
		if d := s.Ref(42); d != 0 {
			t.Fatalf("repeat depth = %d, want 0", d)
		}
	}
}

// TestProfileMatchesCacheSimulation: the single-pass profile must equal
// miss counts of independently simulated fully-associative LRU caches at
// every threshold (the Mattson inclusion property).
func TestProfileMatchesCacheSimulation(t *testing.T) {
	thresholds := []int64{16, 64, 256}
	p := NewProfile(thresholds)
	s := New()

	caches := make([]*cache.FullyAssoc, len(thresholds))
	misses := make([]uint64, len(thresholds))
	for i, th := range thresholds {
		caches[i] = cache.NewFullyAssoc(int(th))
	}

	rng := trace.NewRNG(77)
	for i := 0; i < 200_000; i++ {
		// mixture: hot set + occasional cold lines
		var line mem.Line
		if rng.Uint64n(10) < 8 {
			line = mem.Line(rng.Uint64n(200))
		} else {
			line = mem.Line(1000 + rng.Uint64n(100_000))
		}
		p.Record(s.Ref(line))
		for j, c := range caches {
			if _, ok := c.Access(line); !ok {
				misses[j]++
				c.Insert(line, 0)
			}
		}
	}
	for i := range thresholds {
		if p.Misses[i] != misses[i] {
			t.Fatalf("threshold %d: profile misses %d, cache simulation %d",
				thresholds[i], p.Misses[i], misses[i])
		}
	}
}

// TestProfileMonotone: p(x) must be non-increasing in x (inclusion).
func TestProfileMonotone(t *testing.T) {
	p := NewProfile(PaperThresholds(6))
	s := New()
	rng := trace.NewRNG(3)
	for i := 0; i < 300_000; i++ {
		p.Record(s.Ref(mem.Line(rng.Uint64n(5000))))
	}
	for i := 1; i < len(p.Thresholds); i++ {
		if p.Misses[i] > p.Misses[i-1] {
			t.Fatalf("p(x) not monotone at %d: %d > %d", p.Thresholds[i], p.Misses[i], p.Misses[i-1])
		}
	}
	if p.Cold == 0 || p.Refs != 300_000 {
		t.Fatalf("bookkeeping: cold=%d refs=%d", p.Cold, p.Refs)
	}
}

// TestPaperThresholds: 16KB..16MB at 64B lines = 256..256k lines, 11
// points.
func TestPaperThresholds(t *testing.T) {
	th := PaperThresholds(6)
	if len(th) != 11 || th[0] != 256 || th[len(th)-1] != 256<<10 {
		t.Fatalf("thresholds = %v", th)
	}
}

// TestStackDepthProperty: property test — depth of a line equals the
// number of distinct lines referenced strictly between two references to
// it.
func TestStackDepthProperty(t *testing.T) {
	f := func(fill []uint16, target uint16) bool {
		s := New()
		s.Ref(mem.Line(target))
		for _, l := range fill {
			s.Ref(mem.Line(l))
		}
		// Expected depth: distinct non-target lines after the LAST
		// occurrence of target (in the stream "target, fill...").
		last := -1
		for i, l := range fill {
			if l == target {
				last = i
			}
		}
		d := map[uint16]bool{}
		for _, l := range fill[last+1:] {
			if l != target {
				d[l] = true
			}
		}
		return s.Ref(mem.Line(target)) == int64(len(d))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestMultiStackIndependent: routing disjoint streams to different
// stacks must give each the depth it would see alone.
func TestMultiStackIndependent(t *testing.T) {
	ms := NewMultiStack(4, []int64{8})
	// Two interleaved circular sweeps on different stacks.
	gA, gB := trace.NewCircular(16), trace.NewCircular(16)
	for i := 0; i < 16; i++ {
		ms.Ref(0, mem.Line(gA.Next()))
		ms.Ref(1, mem.Line(1000+gB.Next()))
	}
	for i := 0; i < 64; i++ {
		if d := ms.Ref(0, mem.Line(gA.Next())); d != 15 {
			t.Fatalf("stack 0 depth %d, want 15", d)
		}
		if d := ms.Ref(1, mem.Line(1000+gB.Next())); d != 15 {
			t.Fatalf("stack 1 depth %d, want 15", d)
		}
	}
	if ms.Profile.Refs != 2*16+2*64 {
		t.Fatalf("profile refs = %d", ms.Profile.Refs)
	}
}
