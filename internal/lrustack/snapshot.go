package lrustack

import (
	"fmt"

	"repro/internal/mem"
)

// StackState is the serialisable state of a Stack: the live lines in
// recency order plus the eviction counter. Slot numbers, the Fenwick
// tree and the reverse map are representation details — only the order
// matters for depth queries — so restore re-densifies slots to
// 0..live-1 and rebuilds the derived structures.
type StackState struct {
	// Lines holds the live lines, least recently used first.
	Lines []mem.Line
	// Limit echoes the producing stack's cap for shape validation.
	Limit int64
	// Dropped is the number of lines evicted by the cap.
	Dropped uint64
}

// State returns a deep copy of the stack's state. The line order is
// deterministic (ascending last-reference slot), so identical stacks
// serialise identically.
func (s *Stack) State() StackState {
	lines := make([]mem.Line, 0, len(s.slot))
	for l := range s.slot {
		lines = append(lines, l)
	}
	sortBySlot(lines, s.slot)
	return StackState{
		Lines:   lines,
		Limit:   s.limit,
		Dropped: s.dropped,
	}
}

// SetState restores a previously captured state, replacing the stack's
// contents. The receiving stack must have the same limit regime as the
// producer.
func (s *Stack) SetState(st StackState) error {
	if st.Limit != s.limit {
		return fmt.Errorf("lrustack: state limit %d, stack limit %d", st.Limit, s.limit)
	}
	if s.limit > 0 && int64(len(st.Lines)) > s.limit {
		return fmt.Errorf("lrustack: state has %d live lines, limit is %d", len(st.Lines), s.limit)
	}
	slot := make(map[mem.Line]int64, len(st.Lines))
	for i, l := range st.Lines {
		if _, dup := slot[l]; dup {
			return fmt.Errorf("lrustack: state holds line %d twice", l)
		}
		slot[l] = int64(i)
	}
	s.slot = slot
	s.live = int64(len(st.Lines))
	s.used = s.live
	treeCap := 1024
	for int64(treeCap) <= s.used+1 {
		treeCap *= 2
	}
	s.tree = make([]int64, treeCap)
	s.rebuild()
	if s.rev != nil {
		clear(s.rev)
		for l, sl := range s.slot {
			s.rev[sl] = l
		}
	}
	s.scratch = s.scratch[:0]
	s.dropped = st.Dropped
	return nil
}
